//===- tests/model_registry_test.cpp - model distribution contract --------===//
//
// The model registry under production and failure conditions: SHA-256
// against published vectors, ref/URI parsing and damage, publish/pull
// round trips through an in-memory registry, hash-mismatched payloads
// (remote AND local tampering) never reaching a caller, dead-registry
// degradation to the memoized local copy, dangling refs as typed
// errors, concurrent publishers racing a ref under the server lease
// without tearing it, and an old pre-namespace server answering
// scan-by-prefix with a typed Unsupported.
//
//===----------------------------------------------------------------------===//

#include "cache_backend_conformance.h"

#include "fgbs/core/ModelRegistry.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/net/CacheServer.h"
#include "fgbs/net/Framing.h"
#include "fgbs/support/BinaryIo.h"
#include "fgbs/support/Sha256.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace fgbs;
using conformance::InMemoryBackend;

// The conformance header is included for its InMemoryBackend and
// binaryBlob helpers; the typed battery itself is instantiated in
// cache_backend_conformance_test.cpp.
namespace fgbs {
namespace conformance {
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(CacheBackendConformance);
} // namespace conformance
} // namespace fgbs

namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// SHA-256 vectors (FIPS 180-4 / NIST examples)
//===----------------------------------------------------------------------===//

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(
      sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One million 'a's — exercises the streaming block path.
  EXPECT_EQ(
      sha256Hex(std::string(1000000, 'a')),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  // Updates split at awkward boundaries must agree with the one-shot
  // digest (the block buffer logic is where streaming hashes go wrong).
  std::string Input;
  for (int I = 0; I < 500; ++I)
    Input += "block boundary torture " + std::to_string(I) + "\n";
  Sha256 H;
  std::size_t Off = 0, Chunk = 1;
  while (Off < Input.size()) {
    const std::size_t N = std::min(Chunk, Input.size() - Off);
    H.update(std::string_view(Input).substr(Off, N));
    Off += N;
    Chunk = Chunk * 3 + 1; // 1, 4, 13, 40, ... crosses 64 both ways
  }
  EXPECT_EQ(H.digest(), sha256(Input));
}

TEST(Sha256, HexValidation) {
  EXPECT_TRUE(isSha256Hex(std::string(64, 'a')));
  EXPECT_TRUE(isSha256Hex(
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"));
  EXPECT_FALSE(isSha256Hex(std::string(63, 'a')));
  EXPECT_FALSE(isSha256Hex(std::string(65, 'a')));
  EXPECT_FALSE(isSha256Hex(std::string(64, 'A'))) << "one canonical case";
  EXPECT_FALSE(isSha256Hex(std::string(64, 'g')));
  EXPECT_FALSE(isSha256Hex(""));
}

//===----------------------------------------------------------------------===//
// fgbs.ref.v1 blobs
//===----------------------------------------------------------------------===//

TEST(ModelRef, RoundTrips) {
  ModelRef In;
  In.Sha256Hex = sha256Hex("some snapshot");
  In.SnapshotBytes = 12345;
  In.PublishedUnixSeconds = 1700000000;
  const std::string Blob = serializeModelRef(In);
  ModelRef Out;
  std::string Error;
  ASSERT_TRUE(parseModelRef(Blob, Out, &Error)) << Error;
  EXPECT_EQ(Out.Sha256Hex, In.Sha256Hex);
  EXPECT_EQ(Out.SnapshotBytes, In.SnapshotBytes);
  EXPECT_EQ(Out.PublishedUnixSeconds, In.PublishedUnixSeconds);
}

TEST(ModelRef, DamageIsTyped) {
  ModelRef In;
  In.Sha256Hex = sha256Hex("x");
  In.SnapshotBytes = 1;
  In.PublishedUnixSeconds = 2;
  const std::string Clean = serializeModelRef(In);
  ModelRef Out;
  std::string Error;

  EXPECT_FALSE(parseModelRef("", Out, &Error));
  EXPECT_FALSE(parseModelRef(Clean.substr(0, 10), Out, &Error));
  EXPECT_FALSE(parseModelRef(Clean.substr(0, Clean.size() - 1), Out, &Error));

  std::string BadMagic = Clean;
  BadMagic[0] ^= 0x20;
  EXPECT_FALSE(parseModelRef(BadMagic, Out, &Error));
  EXPECT_NE(Error.find("not an fgbs.ref.v1"), std::string::npos);

  std::string BadVersion = Clean;
  BadVersion[8] = 9;
  EXPECT_FALSE(parseModelRef(BadVersion, Out, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);

  std::string BadPayload = Clean;
  BadPayload.back() = static_cast<char>(BadPayload.back() ^ 0xFF);
  EXPECT_FALSE(parseModelRef(BadPayload, Out, &Error));
  EXPECT_NE(Error.find("checksum"), std::string::npos);

  EXPECT_FALSE(parseModelRef(Clean + "trailing", Out, &Error));
}

//===----------------------------------------------------------------------===//
// fgbs:// URIs
//===----------------------------------------------------------------------===//

TEST(ModelUriParse, AcceptedForms) {
  ModelUri U;
  std::string Error;
  ASSERT_TRUE(parseModelUri("fgbs://cachehost:9321/npb-ref", U, &Error))
      << Error;
  EXPECT_EQ(U.Host, "cachehost");
  EXPECT_EQ(U.Port, 9321);
  EXPECT_EQ(U.Name, "npb-ref");
  EXPECT_EQ(U.Tag, "latest") << "an unadorned URI means @latest";
  EXPECT_TRUE(U.Sha256Hex.empty());

  ASSERT_TRUE(parseModelUri("fgbs://10.0.0.5:80/suite.v2@release-1",
                            U, &Error))
      << Error;
  EXPECT_EQ(U.Tag, "release-1");
  EXPECT_TRUE(U.Sha256Hex.empty());

  const std::string Hex = sha256Hex("pinned");
  ASSERT_TRUE(parseModelUri("fgbs://h:1/m@sha256:" + Hex, U, &Error))
      << Error;
  EXPECT_TRUE(U.Tag.empty());
  EXPECT_EQ(U.Sha256Hex, Hex);
}

TEST(ModelUriParse, RejectedForms) {
  ModelUri U;
  std::string Error;
  EXPECT_FALSE(parseModelUri("http://h:1/m", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://hostonly/m", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:0/m", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:99999/m", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:12x/m", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:1/", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:1/bad name", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:1/a/b", U, &Error))
      << "model names are single segments";
  EXPECT_FALSE(parseModelUri("fgbs://h:1/m@", U, &Error));
  EXPECT_FALSE(parseModelUri("fgbs://h:1/m@sha256:short", U, &Error));
  EXPECT_FALSE(
      parseModelUri("fgbs://h:1/m@sha256:" + std::string(64, 'G'), U, &Error))
      << "hashes are lowercase hex only";
}

TEST(ModelNames, Validation) {
  EXPECT_TRUE(isValidModelName("npb-ref"));
  EXPECT_TRUE(isValidModelName("suite.v2_final"));
  EXPECT_FALSE(isValidModelName(""));
  EXPECT_FALSE(isValidModelName("."));
  EXPECT_FALSE(isValidModelName(".."));
  EXPECT_FALSE(isValidModelName("a/b"));
  EXPECT_FALSE(isValidModelName("a b"));
  EXPECT_FALSE(isValidModelName(std::string(101, 'a')));
  EXPECT_TRUE(isValidModelTag("latest"));
  EXPECT_FALSE(isValidModelTag("v1/rc"));
}

//===----------------------------------------------------------------------===//
// Registry behaviour against a controllable in-memory backend
//===----------------------------------------------------------------------===//

/// Shared fault-injection state: the "registry" several ModelRegistry
/// instances talk to, plus a kill switch and call counters.
struct FakeRegistry {
  InMemoryBackend Store;
  std::atomic<bool> Dead{false};
  std::atomic<int> Gets{0};
};

/// A CacheBackend view over a FakeRegistry: delegates while alive,
/// fails every call (and reports unhealthy) once Dead — the in-process
/// stand-in for a crashed fgbs_cached.
class FaultInjectingBackend final : public CacheBackend {
public:
  explicit FaultInjectingBackend(std::shared_ptr<FakeRegistry> R)
      : R(std::move(R)) {}

  bool exists(const std::string &Name) const override {
    return !R->Dead && R->Store.exists(Name);
  }
  bool get(const std::string &Name, std::string &BytesOut) const override {
    R->Gets.fetch_add(1);
    return !R->Dead && R->Store.get(Name, BytesOut);
  }
  bool put(const std::string &Name, std::string_view Bytes) override {
    return !R->Dead && R->Store.put(Name, Bytes);
  }
  bool remove(const std::string &Name) override {
    return !R->Dead && R->Store.remove(Name);
  }
  std::vector<CacheEntry> scan(const std::string &Prefix,
                               const std::string &Suffix) const override {
    return R->Dead ? std::vector<CacheEntry>{} : R->Store.scan(Prefix, Suffix);
  }
  ScanPrefixResult scanPrefix(const std::string &Prefix) const override {
    if (R->Dead) {
      ScanPrefixResult Out;
      Out.Outcome = ScanPrefixOutcome::Failed;
      Out.Message = "registry down";
      return Out;
    }
    return R->Store.scanPrefix(Prefix);
  }
  bool healthy() const override { return !R->Dead; }
  std::string lockPath(const std::string &) const override { return {}; }

private:
  std::shared_ptr<FakeRegistry> R;
};

struct RegistryTest : ::testing::Test {
  void SetUp() override {
    Fake = std::make_shared<FakeRegistry>();
    static std::atomic<unsigned> Serial{0};
    Dir = fs::temp_directory_path() /
          ("fgbs_registry_" + std::to_string(static_cast<long>(::getpid())) +
           "_" + std::to_string(Serial.fetch_add(1)));
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  /// A registry client with its own local cache subdirectory, talking
  /// to the shared fake (one per simulated host).
  std::unique_ptr<ModelRegistry> client(const std::string &Host) {
    return std::make_unique<ModelRegistry>(
        std::make_unique<FaultInjectingBackend>(Fake),
        (Dir / Host).string());
  }

  std::shared_ptr<FakeRegistry> Fake;
  fs::path Dir;
};

TEST_F(RegistryTest, PublishThenPullRoundTrips) {
  const std::string Snapshot = conformance::binaryBlob(4096);
  ASSERT_NE(Snapshot.find('\0'), std::string::npos);
  auto Publisher = client("publisher");
  PublishResult Pub = Publisher->publish("npb-ref", "latest", Snapshot);
  ASSERT_TRUE(static_cast<bool>(Pub)) << Pub.Message;
  EXPECT_EQ(Pub.Sha256Hex, sha256Hex(Snapshot));
  EXPECT_FALSE(Pub.SnapshotAlreadyPresent);

  // The registry holds both blobs under the documented keys.
  EXPECT_TRUE(Fake->Store.exists(modelShaKey("npb-ref", Pub.Sha256Hex)));
  EXPECT_TRUE(Fake->Store.exists(modelRefKey("npb-ref", "latest")));

  // A different host pulls by tag: payload crosses the network once.
  auto Consumer = client("consumer");
  PullResult Pull = Consumer->pull("npb-ref", "latest");
  ASSERT_TRUE(static_cast<bool>(Pull)) << Pull.Message;
  EXPECT_EQ(Pull.Bytes, Snapshot);
  EXPECT_EQ(Pull.Sha256Hex, Pub.Sha256Hex);
  EXPECT_TRUE(Pull.FetchedFromRemote);
  EXPECT_FALSE(Pull.Degraded);

  // Warm pull: ref check only, payload from the local cache dir.
  PullResult Warm = Consumer->pull("npb-ref", "latest");
  ASSERT_TRUE(static_cast<bool>(Warm)) << Warm.Message;
  EXPECT_EQ(Warm.Bytes, Snapshot);
  EXPECT_FALSE(Warm.FetchedFromRemote);
}

TEST_F(RegistryTest, RepublishIsIdempotentAndMovesTheTag) {
  auto R = client("pub");
  PublishResult First = R->publish("m", "latest", "version one");
  ASSERT_TRUE(static_cast<bool>(First)) << First.Message;
  PublishResult Again = R->publish("m", "latest", "version one");
  ASSERT_TRUE(static_cast<bool>(Again)) << Again.Message;
  EXPECT_TRUE(Again.SnapshotAlreadyPresent);
  EXPECT_EQ(Again.Sha256Hex, First.Sha256Hex);

  PublishResult Second = R->publish("m", "latest", "version two");
  ASSERT_TRUE(static_cast<bool>(Second)) << Second.Message;
  EXPECT_NE(Second.Sha256Hex, First.Sha256Hex);

  // The tag follows the newest publish; the old blob stays addressable.
  auto C = client("con");
  PullResult Latest = C->pull("m", "latest");
  ASSERT_TRUE(static_cast<bool>(Latest)) << Latest.Message;
  EXPECT_EQ(Latest.Bytes, "version two");
  PullResult Pinned = C->pullByHash("m", First.Sha256Hex);
  ASSERT_TRUE(static_cast<bool>(Pinned)) << Pinned.Message;
  EXPECT_EQ(Pinned.Bytes, "version one");
}

TEST_F(RegistryTest, WarmPullByHashTouchesNoNetwork) {
  auto R = client("host");
  PublishResult Pub = R->publish("m", "latest", "snapshot bytes");
  ASSERT_TRUE(static_cast<bool>(Pub)) << Pub.Message;
  const int GetsBefore = Fake->Gets.load();
  // publish() memoized locally, so even the first by-hash pull on the
  // publishing host is satisfied without a remote get.
  PullResult Pull = R->pullByHash("m", Pub.Sha256Hex);
  ASSERT_TRUE(static_cast<bool>(Pull)) << Pull.Message;
  EXPECT_EQ(Pull.Bytes, "snapshot bytes");
  EXPECT_FALSE(Pull.FetchedFromRemote);
  EXPECT_EQ(Fake->Gets.load(), GetsBefore)
      << "a warm by-hash pull must not touch the registry";
}

TEST_F(RegistryTest, UnknownTagOnHealthyRegistryIsRefNotFound) {
  auto R = client("host");
  PullResult Pull = R->pull("m", "no-such-tag");
  EXPECT_EQ(Pull.Error, RegistryError::RefNotFound);
  EXPECT_TRUE(Pull.Bytes.empty());
}

TEST_F(RegistryTest, DanglingRefIsTyped) {
  auto R = client("host");
  PublishResult Pub = R->publish("m", "latest", "soon to vanish");
  ASSERT_TRUE(static_cast<bool>(Pub)) << Pub.Message;
  // The blob disappears (over-aggressive prune, partial publish) but
  // the ref stays — refs are never budget-pruned, so this condition is
  // reportable rather than silent.
  ASSERT_TRUE(Fake->Store.remove(modelShaKey("m", Pub.Sha256Hex)));
  auto Fresh = client("other-host");
  PullResult Pull = Fresh->pull("m", "latest");
  EXPECT_EQ(Pull.Error, RegistryError::DanglingRef) << Pull.Message;
  EXPECT_TRUE(Pull.Bytes.empty());
}

TEST_F(RegistryTest, TamperedRemotePayloadNeverLoads) {
  auto R = client("pub");
  PublishResult Pub = R->publish("m", "latest", "authentic bytes");
  ASSERT_TRUE(static_cast<bool>(Pub)) << Pub.Message;
  // An attacker (or bitrot) replaces the blob behind the hash key.
  ASSERT_TRUE(
      Fake->Store.put(modelShaKey("m", Pub.Sha256Hex), "tampered bytes"));
  auto Victim = client("victim");
  PullResult Pull = Victim->pull("m", "latest");
  EXPECT_EQ(Pull.Error, RegistryError::HashMismatch) << Pull.Message;
  EXPECT_TRUE(Pull.Bytes.empty())
      << "a mismatched payload must never reach the caller";
  PullResult ByHash = Victim->pullByHash("m", Pub.Sha256Hex);
  EXPECT_EQ(ByHash.Error, RegistryError::HashMismatch);
  EXPECT_TRUE(ByHash.Bytes.empty());
}

TEST_F(RegistryTest, TamperedLocalCacheIsDetectedAndRefetched) {
  auto R = client("host");
  PublishResult Pub = R->publish("m", "latest", "authentic bytes");
  ASSERT_TRUE(static_cast<bool>(Pub)) << Pub.Message;
  // Corrupt the memoized local copy on disk.
  const std::string Path = R->localSnapshotPath(Pub.Sha256Hex);
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS << "rotted local copy";
  }
  // The next pull must detect the rot (verify on EVERY load), discard
  // the file, and re-fetch the authentic bytes from the registry.
  PullResult Pull = R->pullByHash("m", Pub.Sha256Hex);
  ASSERT_TRUE(static_cast<bool>(Pull)) << Pull.Message;
  EXPECT_EQ(Pull.Bytes, "authentic bytes");
  EXPECT_TRUE(Pull.FetchedFromRemote);
  // And the local copy is healthy again.
  PullResult Warm = R->pullByHash("m", Pub.Sha256Hex);
  ASSERT_TRUE(static_cast<bool>(Warm)) << Warm.Message;
  EXPECT_FALSE(Warm.FetchedFromRemote);
}

TEST_F(RegistryTest, DeadRegistryDegradesToLocalCopy) {
  auto R = client("host");
  PublishResult Pub = R->publish("m", "latest", "survives the outage");
  ASSERT_TRUE(static_cast<bool>(Pub)) << Pub.Message;
  Fake->Dead = true;

  PullResult Tagged = R->pull("m", "latest");
  ASSERT_TRUE(static_cast<bool>(Tagged)) << Tagged.Message;
  EXPECT_TRUE(Tagged.Degraded);
  EXPECT_EQ(Tagged.Bytes, "survives the outage");

  PullResult ByHash = R->pullByHash("m", Pub.Sha256Hex);
  ASSERT_TRUE(static_cast<bool>(ByHash)) << ByHash.Message;
  EXPECT_EQ(ByHash.Bytes, "survives the outage");

  // A host that never pulled has nothing to degrade to.
  auto Cold = client("cold-host");
  PullResult Miss = Cold->pull("m", "latest");
  EXPECT_EQ(Miss.Error, RegistryError::Unreachable) << Miss.Message;
  PullResult MissHash = Cold->pullByHash("m", Pub.Sha256Hex);
  EXPECT_EQ(MissHash.Error, RegistryError::Unreachable) << MissHash.Message;
}

TEST_F(RegistryTest, ListEnumeratesPublishedBlobs) {
  auto R = client("host");
  ASSERT_TRUE(static_cast<bool>(R->publish("alpha", "latest", "a")));
  ASSERT_TRUE(static_cast<bool>(R->publish("beta", "latest", "b")));
  ScanPrefixResult One = R->list("alpha");
  ASSERT_TRUE(static_cast<bool>(One)) << One.Message;
  EXPECT_EQ(One.Entries.size(), 2u) << "one sha blob + one ref";
  ScanPrefixResult All = R->list("");
  ASSERT_TRUE(static_cast<bool>(All)) << All.Message;
  EXPECT_EQ(All.Entries.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Against a live fgbs_cached: the ref race and end-to-end wire pulls
//===----------------------------------------------------------------------===//

struct LiveRegistryTest : ::testing::Test {
  void SetUp() override {
    static std::atomic<unsigned> Serial{0};
    Dir = fs::temp_directory_path() /
          ("fgbs_registry_live_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           std::to_string(Serial.fetch_add(1)));
    fs::remove_all(Dir);
    fs::create_directories(Dir);
    net::CacheServerConfig Config;
    Config.Root = (Dir / "server").string();
    Config.Shards = 2;
    Config.Threads = 4;
    Config.BindAddr = "127.0.0.1";
    Server = std::make_unique<net::CacheServer>(std::move(Config));
    std::string Error;
    ASSERT_TRUE(Server->start(&Error)) << Error;
  }
  void TearDown() override {
    if (Server)
      Server->stop();
    fs::remove_all(Dir);
  }

  std::unique_ptr<ModelRegistry> client(const std::string &Host) {
    RemoteCacheConfig Config;
    Config.Host = "127.0.0.1";
    Config.Port = Server->port();
    return std::make_unique<ModelRegistry>(
        std::make_unique<RemoteCacheBackend>(std::move(Config)),
        (Dir / Host).string());
  }

  fs::path Dir;
  std::unique_ptr<net::CacheServer> Server;
};

TEST_F(LiveRegistryTest, WirePublishPullRoundTrip) {
  const std::string Snapshot = conformance::binaryBlob(200000);
  auto Pub = client("pub");
  PublishResult P = Pub->publish("wire-model", "latest", Snapshot);
  ASSERT_TRUE(static_cast<bool>(P)) << P.Message;
  auto Con = client("con");
  PullResult Pull = Con->pull("wire-model", "latest");
  ASSERT_TRUE(static_cast<bool>(Pull)) << Pull.Message;
  EXPECT_EQ(Pull.Bytes, Snapshot);
  EXPECT_TRUE(Pull.FetchedFromRemote);
  PullResult Warm = Con->pull("wire-model", "latest");
  ASSERT_TRUE(static_cast<bool>(Warm)) << Warm.Message;
  EXPECT_FALSE(Warm.FetchedFromRemote);
}

TEST_F(LiveRegistryTest, RacingPublishersNeverTearTheRef) {
  // Two publishers hammer the same tag with different payloads.  Under
  // the server's ref lease each replacement is whole-ref, so every
  // observation — including the final state — must be a fully valid
  // ref naming a fully present snapshot.
  const std::string BytesA = "payload from publisher A";
  const std::string BytesB = "payload from publisher B, different size";
  const std::string HexA = sha256Hex(BytesA);
  const std::string HexB = sha256Hex(BytesB);
  std::atomic<int> Failures{0};
  auto hammer = [&](const std::string &Host, const std::string &Bytes) {
    auto R = client(Host);
    for (int I = 0; I < 8; ++I) {
      PublishResult P = R->publish("contended", "latest", Bytes);
      if (!P)
        Failures.fetch_add(1);
    }
  };
  std::thread A(hammer, "host-a", BytesA);
  std::thread B(hammer, "host-b", BytesB);
  A.join();
  B.join();
  EXPECT_EQ(Failures.load(), 0) << "publishes serialize under the lease";

  // The final ref is wholly one of the two, never a splice.
  auto Reader = client("reader");
  std::string RefBytes;
  ASSERT_TRUE(
      Reader->remote().get(modelRefKey("contended", "latest"), RefBytes));
  ModelRef Ref;
  std::string Error;
  ASSERT_TRUE(parseModelRef(RefBytes, Ref, &Error)) << Error;
  EXPECT_TRUE(Ref.Sha256Hex == HexA || Ref.Sha256Hex == HexB);

  // And a pull through it serves exactly the winner's bytes.
  PullResult Pull = Reader->pull("contended", "latest");
  ASSERT_TRUE(static_cast<bool>(Pull)) << Pull.Message;
  EXPECT_EQ(Pull.Bytes, Ref.Sha256Hex == HexA ? BytesA : BytesB);
  // Both blobs stayed addressable regardless of who won the tag.
  EXPECT_TRUE(static_cast<bool>(Reader->pullByHash("contended", HexA)));
  EXPECT_TRUE(static_cast<bool>(Reader->pullByHash("contended", HexB)));
}

//===----------------------------------------------------------------------===//
// Old-server detection: scan-by-prefix must degrade to a typed
// Unsupported, not an empty "authoritative" listing
//===----------------------------------------------------------------------===//

TEST(ScanPrefixCompat, OldServerYieldsTypedUnsupported) {
  // A minimal fgbs.cachewire.v1 speaker that predates ScanPrefix: it
  // answers every request the way the real pre-namespace server
  // answers unknown opcodes — a typed Error frame naming the opcode.
  net::Listener L;
  std::string Error;
  ASSERT_TRUE(L.listenOn("127.0.0.1", 0, 4, &Error)) << Error;
  std::atomic<bool> Stop{false};
  std::thread OldServer([&L, &Stop] {
    while (!Stop.load()) {
      net::Socket Conn = L.acceptOnce(100);
      if (!Conn.valid())
        continue;
      for (;;) {
        net::Frame Request;
        if (net::readFrame(Conn, Request, 2000) != net::WireError::None)
          break;
        std::string Payload;
        if (Request.Op == net::Opcode::Ping) {
          net::writeFrame(Conn, net::Opcode::Ok, "", 2000);
          continue;
        }
        binio::putStr(Payload, "unsupported opcode " +
                                   std::to_string(static_cast<unsigned>(
                                       Request.Op)));
        if (!net::writeFrame(Conn, net::Opcode::Error, Payload, 2000))
          break;
      }
    }
  });

  RemoteCacheConfig Config;
  Config.Host = "127.0.0.1";
  Config.Port = L.port();
  Config.MaxAttempts = 1;
  RemoteCacheBackend Client(std::move(Config));
  ScanPrefixResult R = Client.scanPrefix("model/");
  EXPECT_EQ(R.Outcome, ScanPrefixOutcome::Unsupported) << R.Message;
  EXPECT_TRUE(R.Entries.empty());

  // And ModelRegistry::list surfaces the same typed outcome.
  ModelRegistry Registry(std::make_unique<RemoteCacheBackend>([&] {
                           RemoteCacheConfig C;
                           C.Host = "127.0.0.1";
                           C.Port = L.port();
                           C.MaxAttempts = 1;
                           return C;
                         }()),
                         "");
  ScanPrefixResult Via = Registry.list("");
  EXPECT_EQ(Via.Outcome, ScanPrefixOutcome::Unsupported);

  Stop = true;
  OldServer.join();
}

} // namespace
