//===- tests/measurement_cache_test.cpp - fgbs.meas.v1 cache --------------===//

#include "fgbs/core/MeasurementCache.h"

#include "fgbs/suites/Synthetic.h"
#include "fgbs/support/Crc32.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace fgbs;

namespace {

SyntheticConfig smallConfig() {
  SyntheticConfig Cfg;
  Cfg.NumApplications = 1;
  Cfg.CodeletsPerApp = 4;
  Cfg.MinFootprintBytes = 64 << 10;
  Cfg.MaxFootprintBytes = 1 << 20;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Shared small database (simulated once; every suite reuses it)
//===----------------------------------------------------------------------===//

class MeasurementCacheTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(makeSyntheticSuite(smallConfig()));
    Targets = {makeAtom(), makeSandyBridge()};
    Db = new MeasurementDatabase(*TheSuite, makeNehalem(), Targets);
    Key = measurementKey(*TheSuite, makeNehalem(), Targets);
  }
  static void TearDownTestSuite() {
    delete Db;
    delete TheSuite;
    Db = nullptr;
    TheSuite = nullptr;
  }

  static Suite *TheSuite;
  static std::vector<Machine> Targets;
  static MeasurementDatabase *Db;
  static std::uint64_t Key;
};

Suite *MeasurementCacheTest::TheSuite = nullptr;
std::vector<Machine> MeasurementCacheTest::Targets;
MeasurementDatabase *MeasurementCacheTest::Db = nullptr;
std::uint64_t MeasurementCacheTest::Key = 0;

void patchU32(std::string &Bytes, std::size_t Offset, std::uint32_t V) {
  for (int B = 0; B < 4; ++B)
    Bytes[Offset + B] = static_cast<char>((V >> (8 * B)) & 0xffu);
}

void patchU64(std::string &Bytes, std::size_t Offset, std::uint64_t V) {
  for (int B = 0; B < 8; ++B)
    Bytes[Offset + B] = static_cast<char>((V >> (8 * B)) & 0xffu);
}

void fixChecksum(std::string &Bytes) {
  patchU32(Bytes, 24,
           crc32(std::string_view(Bytes).substr(kMeasurementHeaderBytes)));
}

/// A scratch directory unique to the running test, removed on scope
/// exit.
struct TempDir {
  std::filesystem::path Path;
  explicit TempDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("fgbs_meas_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Round-tripping
//===----------------------------------------------------------------------===//

TEST_F(MeasurementCacheTest, SerializeParseSerializeIsByteIdentical) {
  std::string Bytes = serializeMeasurements(*Db, Key);
  MeasurementLoadResult R =
      parseMeasurements(Bytes, *TheSuite, makeNehalem(), Targets, Key);
  ASSERT_TRUE(R) << measurementCacheErrorName(R.Error) << ": " << R.Message;
  EXPECT_EQ(serializeMeasurements(*R.Db, Key), Bytes);
}

TEST_F(MeasurementCacheTest, LoadedDatabaseMatchesFieldByField) {
  std::string Bytes = serializeMeasurements(*Db, Key);
  MeasurementLoadResult R =
      parseMeasurements(Bytes, *TheSuite, makeNehalem(), Targets, Key);
  ASSERT_TRUE(R) << R.Message;

  ASSERT_EQ(R.Db->numCodelets(), Db->numCodelets());
  ASSERT_EQ(R.Db->targets().size(), Db->targets().size());
  for (std::size_t I = 0; I < Db->numCodelets(); ++I) {
    const CodeletProfile &A = Db->profile(I);
    const CodeletProfile &B = R.Db->profile(I);
    // The rebuilt profile must point into the LIVE suite, not a copy.
    EXPECT_EQ(B.C, A.C);
    EXPECT_EQ(B.Discarded, A.Discarded);
    EXPECT_EQ(B.InApp.TrueSeconds, A.InApp.TrueSeconds);
    EXPECT_EQ(B.InApp.MeasuredSeconds, A.InApp.MeasuredSeconds);
    EXPECT_EQ(B.InApp.Counters.Cycles, A.InApp.Counters.Cycles);
    EXPECT_EQ(B.InApp.Compute.ComputeCycles, A.InApp.Compute.ComputeCycles);
    EXPECT_EQ(B.Features, A.Features);
    EXPECT_EQ(B.InApp.MemCyclesPerIter, A.InApp.MemCyclesPerIter);
    EXPECT_EQ(R.Db->standaloneRef(I).MedianSeconds,
              Db->standaloneRef(I).MedianSeconds);
    EXPECT_EQ(R.Db->standaloneRef(I).Invocations,
              Db->standaloneRef(I).Invocations);
    for (std::size_t T = 0; T < Db->targets().size(); ++T) {
      EXPECT_EQ(R.Db->realTargetSeconds(I, T), Db->realTargetSeconds(I, T));
      EXPECT_EQ(R.Db->standaloneTarget(I, T).MedianSeconds,
                Db->standaloneTarget(I, T).MedianSeconds);
    }
  }
}

TEST_F(MeasurementCacheTest, SaveLoadSaveFileIsByteIdentical) {
  TempDir Dir("roundtrip");
  std::string Path = (Dir.Path / measurementCacheFileName(Key)).string();
  ASSERT_TRUE(saveMeasurementsFile(Path, *Db, Key));
  MeasurementLoadResult R =
      loadMeasurementsFile(Path, *TheSuite, makeNehalem(), Targets, Key);
  ASSERT_TRUE(R) << R.Message;
  std::string Second = (Dir.Path / "again.v1").string();
  ASSERT_TRUE(saveMeasurementsFile(Second, *R.Db, Key));
  std::ifstream A(Path, std::ios::binary), B(Second, std::ios::binary);
  std::string BytesA((std::istreambuf_iterator<char>(A)),
                     std::istreambuf_iterator<char>());
  std::string BytesB((std::istreambuf_iterator<char>(B)),
                     std::istreambuf_iterator<char>());
  EXPECT_FALSE(BytesA.empty());
  EXPECT_EQ(BytesA, BytesB);
}

//===----------------------------------------------------------------------===//
// Corruption: every failure is a typed error, never UB
//===----------------------------------------------------------------------===//

TEST_F(MeasurementCacheTest, EveryFlippedPayloadByteIsDetected) {
  // CRC-32 detects all single-byte errors, so flipping ANY payload byte
  // must fail before the structural decoder ever runs.
  std::string Bytes = serializeMeasurements(*Db, Key);
  for (std::size_t I = kMeasurementHeaderBytes; I < Bytes.size(); ++I) {
    std::string Damaged = Bytes;
    Damaged[I] = static_cast<char>(Damaged[I] ^ 0x40);
    MeasurementLoadResult R =
        parseMeasurements(Damaged, *TheSuite, makeNehalem(), Targets, Key);
    ASSERT_FALSE(R) << "byte " << I;
    EXPECT_EQ(R.Error, MeasurementCacheError::ChecksumMismatch)
        << "byte " << I;
  }
}

TEST_F(MeasurementCacheTest, HeaderDamageIsTyped) {
  std::string Bytes = serializeMeasurements(*Db, Key);

  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_EQ(parseMeasurements(BadMagic, *TheSuite, makeNehalem(), Targets, Key)
                .Error,
            MeasurementCacheError::BadMagic);

  std::string BadMajor = Bytes;
  patchU32(BadMajor, 8, kMeasurementVersionMajor + 1);
  EXPECT_EQ(parseMeasurements(BadMajor, *TheSuite, makeNehalem(), Targets, Key)
                .Error,
            MeasurementCacheError::UnsupportedVersion);

  std::string Short = Bytes.substr(0, Bytes.size() / 2);
  EXPECT_EQ(
      parseMeasurements(Short, *TheSuite, makeNehalem(), Targets, Key).Error,
      MeasurementCacheError::Truncated);

  EXPECT_EQ(parseMeasurements(Bytes.substr(0, 10), *TheSuite, makeNehalem(),
                              Targets, Key)
                .Error,
            MeasurementCacheError::Truncated);

  EXPECT_EQ(parseMeasurements(Bytes + "junk", *TheSuite, makeNehalem(),
                              Targets, Key)
                .Error,
            MeasurementCacheError::Malformed);

  std::string BadCrc = Bytes;
  patchU32(BadCrc, 24, 0xDEADBEEFu);
  EXPECT_EQ(
      parseMeasurements(BadCrc, *TheSuite, makeNehalem(), Targets, Key).Error,
      MeasurementCacheError::ChecksumMismatch);
}

TEST_F(MeasurementCacheTest, NonFiniteValuesAreRejected) {
  std::string Bytes = serializeMeasurements(*Db, Key);
  // Rather than compute the offset of a specific double, scan forward
  // planting a quiet NaN (with a fixed-up checksum, so the CRC stage
  // passes) until the finite-value validation rejects one.  Earlier
  // offsets land in the identity strings and fail as KeyMismatch — also
  // a typed error, never a crash.
  bool SawInvalidValue = false;
  for (std::size_t I = kMeasurementHeaderBytes; I + 8 <= Bytes.size(); ++I) {
    std::string Damaged = Bytes;
    patchU64(Damaged, I, 0x7ff8000000000000ull); // quiet NaN
    fixChecksum(Damaged);
    MeasurementLoadResult R =
        parseMeasurements(Damaged, *TheSuite, makeNehalem(), Targets, Key);
    if (!R && R.Error == MeasurementCacheError::InvalidValue) {
      SawInvalidValue = true;
      break;
    }
  }
  EXPECT_TRUE(SawInvalidValue);
}

TEST_F(MeasurementCacheTest, FutureMinorVersionSkipsTrailingFields) {
  std::string Bytes = serializeMeasurements(*Db, Key);
  Bytes.append("\x01\x02\x03\x04", 4);
  patchU32(Bytes, 12, kMeasurementVersionMinor + 1);
  patchU64(Bytes, 16, Bytes.size() - kMeasurementHeaderBytes);
  fixChecksum(Bytes);
  MeasurementLoadResult R =
      parseMeasurements(Bytes, *TheSuite, makeNehalem(), Targets, Key);
  ASSERT_TRUE(R) << R.Message;
  EXPECT_EQ(R.Db->numCodelets(), Db->numCodelets());
}

TEST_F(MeasurementCacheTest, MissingFileIsIo) {
  MeasurementLoadResult R = loadMeasurementsFile(
      "/nonexistent/fgbs/cache.v1", *TheSuite, makeNehalem(), Targets, Key);
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, MeasurementCacheError::Io);
}

TEST_F(MeasurementCacheTest, EveryErrorHasAStableName) {
  EXPECT_STREQ(measurementCacheErrorName(MeasurementCacheError::None), "none");
  EXPECT_STREQ(measurementCacheErrorName(MeasurementCacheError::Io), "io");
  EXPECT_STREQ(measurementCacheErrorName(MeasurementCacheError::LockTimeout),
               "lock_timeout");
}

//===----------------------------------------------------------------------===//
// Content key
//===----------------------------------------------------------------------===//

TEST_F(MeasurementCacheTest, KeyCoversMachinesPolicyAndCodelets) {
  std::uint64_t Base = measurementKey(*TheSuite, makeNehalem(), Targets);
  EXPECT_EQ(Base, measurementKey(*TheSuite, makeNehalem(), Targets));

  // Any machine-configuration change re-keys the cache.
  std::vector<Machine> Tweaked = Targets;
  Tweaked[0].MemBandwidthGBs *= 2.0;
  EXPECT_NE(Base, measurementKey(*TheSuite, makeNehalem(), Tweaked));
  Tweaked = Targets;
  Tweaked[1].CacheLevels.back().SizeBytes /= 2;
  EXPECT_NE(Base, measurementKey(*TheSuite, makeNehalem(), Tweaked));

  // So does the timing policy...
  TimingPolicy Longer;
  Longer.MinRunSeconds = 1.0;
  EXPECT_NE(Base, measurementKey(*TheSuite, makeNehalem(), Targets, Longer));

  // ...and any codelet change.
  Suite Bigger = makeSyntheticSuite(smallConfig());
  Bigger.Applications[0].Codelets[0].Nest.InnerTripCount += 1;
  EXPECT_NE(Base, measurementKey(Bigger, makeNehalem(), Targets));
}

TEST_F(MeasurementCacheTest, WrongExpectedKeyIsKeyMismatch) {
  std::string Bytes = serializeMeasurements(*Db, Key);
  MeasurementLoadResult R =
      parseMeasurements(Bytes, *TheSuite, makeNehalem(), Targets, Key + 1);
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, MeasurementCacheError::KeyMismatch);
}

//===----------------------------------------------------------------------===//
// buildMeasurementDatabase: the cached front-end
//===----------------------------------------------------------------------===//

TEST_F(MeasurementCacheTest, BuildStoresThenServesIdenticalDatabase) {
  TempDir Dir("build");
  DatabaseBuildOptions Options;
  Options.CacheDir = Dir.Path.string();

  auto Cold = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                       Options);
  ASSERT_TRUE(Cold);
  EXPECT_TRUE(std::filesystem::exists(Dir.Path / measurementCacheFileName(
                                                     Key)));
  auto Warm = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                       Options);
  ASSERT_TRUE(Warm);
  EXPECT_EQ(serializeMeasurements(*Warm, Key),
            serializeMeasurements(*Cold, Key));
  EXPECT_EQ(serializeMeasurements(*Cold, Key), serializeMeasurements(*Db, Key));
}

TEST_F(MeasurementCacheTest, ChangedMachineConfigForcesResimulation) {
  TempDir Dir("rekey");
  DatabaseBuildOptions Options;
  Options.CacheDir = Dir.Path.string();

  auto First =
      buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets, Options);
  ASSERT_TRUE(First);

  // A tweaked target keys to a different file: the warm file for the old
  // configuration must not be served, and a fresh simulation must run.
  std::vector<Machine> Tweaked = Targets;
  Tweaked[0].MemBandwidthGBs *= 2.0;
  auto Second =
      buildMeasurementDatabase(*TheSuite, makeNehalem(), Tweaked, Options);
  ASSERT_TRUE(Second);
  std::uint64_t TweakedKey = measurementKey(*TheSuite, makeNehalem(), Tweaked);
  EXPECT_NE(TweakedKey, Key);
  EXPECT_TRUE(
      std::filesystem::exists(Dir.Path / measurementCacheFileName(TweakedKey)));
  // Doubled bandwidth must actually change some measurement.
  bool AnyDifferent = false;
  for (std::size_t I = 0; I < First->numCodelets(); ++I)
    AnyDifferent |= First->standaloneTarget(I, 0).MedianSeconds !=
                    Second->standaloneTarget(I, 0).MedianSeconds;
  EXPECT_TRUE(AnyDifferent);
}

TEST_F(MeasurementCacheTest, CorruptFileFallsBackToCleanResimulation) {
  TempDir Dir("corrupt");
  DatabaseBuildOptions Options;
  Options.CacheDir = Dir.Path.string();

  auto Cold =
      buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets, Options);
  ASSERT_TRUE(Cold);

  // Damage the stored file: the next build must warn, ignore it, and
  // still produce the exact uncached database (then re-store it).
  std::filesystem::path File = Dir.Path / measurementCacheFileName(Key);
  {
    std::ifstream In(File, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(Bytes.size(), kMeasurementHeaderBytes + 3);
    Bytes[kMeasurementHeaderBytes + 3] ^= 0x40;
    std::ofstream Out(File, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  auto Recovered =
      buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets, Options);
  ASSERT_TRUE(Recovered);
  EXPECT_EQ(serializeMeasurements(*Recovered, Key),
            serializeMeasurements(*Db, Key));

  // The re-store healed the file: a third build serves it cleanly.
  MeasurementLoadResult Healed = loadMeasurementsFile(
      File.string(), *TheSuite, makeNehalem(), Targets, Key);
  EXPECT_TRUE(Healed) << Healed.Message;
}

TEST_F(MeasurementCacheTest, NoCacheNeverTouchesDisk) {
  TempDir Dir("disabled");
  DatabaseBuildOptions Options;
  Options.CacheDir = Dir.Path.string();
  Options.UseCache = false;
  auto DbNoCache =
      buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets, Options);
  ASSERT_TRUE(DbNoCache);
  EXPECT_TRUE(std::filesystem::is_empty(Dir.Path));
  EXPECT_EQ(serializeMeasurements(*DbNoCache, Key),
            serializeMeasurements(*Db, Key));
}
