//===- tests/file_lock_test.cpp - support/FileLock ------------------------===//
//
// The cross-process lock under the measurement cache: mutual exclusion
// across threads and forked processes, timeout behaviour, and
// stale-sentinel recovery.
//
//===----------------------------------------------------------------------===//

#include "fgbs/support/FileLock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fgbs;

namespace {

/// A scratch directory unique to the running test, removed on scope
/// exit.
struct TempDir {
  std::filesystem::path Path;
  explicit TempDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("fgbs_lock_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }

  std::string file(const std::string &Name) const {
    return (Path / Name).string();
  }
};

FileLock::Options fastOptions() {
  FileLock::Options O;
  O.TimeoutMs = 10000;
  O.InitialBackoffMs = 1;
  O.MaxBackoffMs = 5;
  return O;
}

} // namespace

TEST(FileLockTest, AcquireReleaseRoundTrip) {
  TempDir Dir("roundtrip");
  FileLock Lock(Dir.file("x.lock"));
  EXPECT_FALSE(Lock.held());
  FileLock::AcquireResult R = Lock.acquire(fastOptions());
  ASSERT_TRUE(R) << R.Message;
  EXPECT_TRUE(Lock.held());
  EXPECT_FALSE(R.BrokeStaleLock);
  Lock.release();
  EXPECT_FALSE(Lock.held());
  // Re-acquirable after release.
  EXPECT_TRUE(Lock.acquire(fastOptions()));
}

TEST(FileLockTest, EmptyPathIsANoOpLock) {
  FileLock Lock("");
  FileLock::AcquireResult R = Lock.acquire(fastOptions());
  EXPECT_TRUE(R);
  EXPECT_TRUE(Lock.held());
  Lock.release();
}

TEST(FileLockTest, SecondHolderTimesOutWhileHeld) {
  TempDir Dir("timeout");
  FileLock First(Dir.file("x.lock"));
  ASSERT_TRUE(First.acquire(fastOptions()));

  FileLock Second(Dir.file("x.lock"));
  EXPECT_FALSE(Second.tryAcquire(fastOptions()));
  FileLock::Options Short = fastOptions();
  Short.TimeoutMs = 60;
  FileLock::AcquireResult R = Second.acquire(Short);
  EXPECT_EQ(R.St, FileLock::Status::Timeout);
  EXPECT_GE(R.WaitedMs, Short.TimeoutMs);
  EXPECT_FALSE(Second.held());

  // Release frees the waiter immediately.
  First.release();
  EXPECT_TRUE(Second.acquire(fastOptions()));
}

TEST(FileLockTest, MultiThreadMutualExclusion) {
  TempDir Dir("threads");
  const std::string LockPath = Dir.file("x.lock");
  constexpr int NumThreads = 6;
  constexpr int Increments = 25;

  // The guarded resource is a deliberately non-atomic counter; without
  // mutual exclusion the read-modify-write cycles interleave and the
  // final count falls short.
  long Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < Increments; ++I) {
        FileLock Lock(LockPath);
        FileLock::AcquireResult R = Lock.acquire(fastOptions());
        ASSERT_TRUE(R) << R.Message;
        long V = Counter;
        std::this_thread::yield();
        Counter = V + 1;
        Lock.release();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, static_cast<long>(NumThreads) * Increments);
}

TEST(FileLockTest, ForkedProcessMutualExclusion) {
  TempDir Dir("fork");
  const std::string LockPath = Dir.file("x.lock");
  const std::string CounterPath = Dir.file("counter");
  {
    std::ofstream(CounterPath) << 0 << "\n";
  }

  constexpr int NumChildren = 4;
  constexpr int Increments = 10;
  std::vector<pid_t> Children;
  for (int C = 0; C < NumChildren; ++C) {
    pid_t Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: lock, read-increment-rewrite the counter file, unlock.
      for (int I = 0; I < Increments; ++I) {
        FileLock Lock(LockPath);
        if (!Lock.acquire(fastOptions()))
          ::_exit(2);
        long V = 0;
        {
          std::ifstream In(CounterPath);
          In >> V;
        }
        {
          std::ofstream Out(CounterPath, std::ios::trunc);
          Out << V + 1 << "\n";
        }
        Lock.release();
      }
      ::_exit(0);
    }
    Children.push_back(Pid);
  }
  for (pid_t Pid : Children) {
    int St = 0;
    ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
    EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
  }
  long Final = -1;
  std::ifstream(CounterPath) >> Final;
  EXPECT_EQ(Final, static_cast<long>(NumChildren) * Increments);
}

TEST(FileLockTest, SentinelStaleDeadPidIsBroken) {
  TempDir Dir("stale_pid");
  const std::string LockPath = Dir.file("x.lock");

  // A child takes the sentinel lock and dies without releasing (as a
  // crashed writer would); _exit skips the destructor on purpose.
  FileLock::Options Sentinel = fastOptions();
  Sentinel.LockMode = FileLock::Mode::Exclusive;
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    FileLock Lock(LockPath);
    ::_exit(Lock.acquire(Sentinel) ? 0 : 2);
  }
  int St = 0;
  ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
  ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
  ASSERT_TRUE(std::filesystem::exists(LockPath));

  // The owner pid is dead, so the sentinel is stale regardless of age.
  FileLock Lock(LockPath);
  Sentinel.TimeoutMs = 5000;
  Sentinel.StaleAfterMs = 1000 * 60 * 60;
  FileLock::AcquireResult R = Lock.acquire(Sentinel);
  ASSERT_TRUE(R) << R.Message;
  EXPECT_TRUE(R.BrokeStaleLock);
}

TEST(FileLockTest, SentinelUnknownOwnerGoesStaleByMtime) {
  TempDir Dir("stale_mtime");
  const std::string LockPath = Dir.file("x.lock");
  // A sentinel whose owner cannot be determined (garbage content, e.g.
  // a writer that died between create and write).
  std::ofstream(LockPath) << "not a pid line\n";

  FileLock::Options Sentinel = fastOptions();
  Sentinel.LockMode = FileLock::Mode::Exclusive;
  Sentinel.StaleAfterMs = 10;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  FileLock Lock(LockPath);
  FileLock::AcquireResult R = Lock.acquire(Sentinel);
  ASSERT_TRUE(R) << R.Message;
  EXPECT_TRUE(R.BrokeStaleLock);

  // While the heartbeat window is still open the same file is NOT
  // stale: a fresh unknown-owner sentinel blocks a short acquire.
  Lock.release();
  std::ofstream(LockPath) << "not a pid line\n";
  Sentinel.StaleAfterMs = 1000 * 60 * 60;
  Sentinel.TimeoutMs = 60;
  FileLock Blocked(LockPath);
  EXPECT_EQ(Blocked.acquire(Sentinel).St, FileLock::Status::Timeout);
}

TEST(FileLockTest, SentinelReleaseUnlinksAndHeartbeatRefreshes) {
  TempDir Dir("sentinel_release");
  const std::string LockPath = Dir.file("x.lock");
  FileLock::Options Sentinel = fastOptions();
  Sentinel.LockMode = FileLock::Mode::Exclusive;

  FileLock Lock(LockPath);
  ASSERT_TRUE(Lock.acquire(Sentinel));
  struct stat Before;
  ASSERT_EQ(::stat(LockPath.c_str(), &Before), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Lock.heartbeat();
  struct stat After;
  ASSERT_EQ(::stat(LockPath.c_str(), &After), 0);
  EXPECT_TRUE(After.st_mtim.tv_sec > Before.st_mtim.tv_sec ||
              (After.st_mtim.tv_sec == Before.st_mtim.tv_sec &&
               After.st_mtim.tv_nsec > Before.st_mtim.tv_nsec));

  // Sentinel release removes the file (existence IS the lock); a new
  // acquire succeeds instantly without breaking anything.
  Lock.release();
  EXPECT_FALSE(std::filesystem::exists(LockPath));
  FileLock Next(LockPath);
  FileLock::AcquireResult R = Next.acquire(Sentinel);
  EXPECT_TRUE(R);
  EXPECT_FALSE(R.BrokeStaleLock);
}

TEST(FileLockTest, FlockModeLeavesTheFileOnRelease) {
  TempDir Dir("flock_release");
  const std::string LockPath = Dir.file("x.lock");
  FileLock Lock(LockPath);
  ASSERT_TRUE(Lock.acquire(fastOptions()));
  Lock.release();
  // Deliberate: unlinking a flock file would allow the two-inode race.
  EXPECT_TRUE(std::filesystem::exists(LockPath));
}
