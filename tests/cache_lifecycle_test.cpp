//===- tests/cache_lifecycle_test.cpp - cache locking + eviction ----------===//
//
// The measurement cache's lifecycle layer: the fgbs.meas.index.v1
// manifest, LRU/age eviction, atomic publish, typed lock-timeout
// stores, and the cross-process single-simulation guarantee of
// buildMeasurementDatabase.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"

#include "fgbs/obs/Metrics.h"
#include "fgbs/suites/Synthetic.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace fgbs;

namespace {

SyntheticConfig tinyConfig() {
  SyntheticConfig Cfg;
  Cfg.NumApplications = 1;
  Cfg.CodeletsPerApp = 3;
  Cfg.MinFootprintBytes = 64 << 10;
  Cfg.MaxFootprintBytes = 1 << 20;
  return Cfg;
}

/// A scratch directory unique to the running test, removed on scope
/// exit.
struct TempDir {
  std::filesystem::path Path;
  explicit TempDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("fgbs_lifecycle_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

/// Shared tiny database; simulated once for the whole binary.
class CacheLifecycleTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(makeSyntheticSuite(tinyConfig()));
    Targets = {makeAtom()};
    Db = new MeasurementDatabase(*TheSuite, makeNehalem(), Targets);
    Key = measurementKey(*TheSuite, makeNehalem(), Targets);
  }
  static void TearDownTestSuite() {
    delete Db;
    delete TheSuite;
    Db = nullptr;
    TheSuite = nullptr;
  }

  static Suite *TheSuite;
  static std::vector<Machine> Targets;
  static MeasurementDatabase *Db;
  static std::uint64_t Key;
};

Suite *CacheLifecycleTest::TheSuite = nullptr;
std::vector<Machine> CacheLifecycleTest::Targets;
MeasurementDatabase *CacheLifecycleTest::Db = nullptr;
std::uint64_t CacheLifecycleTest::Key = 0;

std::string manifestPath(const TempDir &Dir) {
  return (Dir.Path / kMeasurementIndexName).string();
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

std::int64_t nowSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Writes a well-formed manifest with caller-chosen access times —
/// exactly what a long-lived cache directory accumulates over time.
void writeManifest(const TempDir &Dir,
                   const std::vector<CacheEntry> &Entries) {
  std::ofstream Out(manifestPath(Dir), std::ios::trunc);
  Out << kMeasurementIndexName << "\n";
  for (const CacheEntry &E : Entries)
    Out << E.AccessUnixSeconds << " " << E.SizeBytes << " " << E.Name << "\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// Atomic publish + manifest bookkeeping
//===----------------------------------------------------------------------===//

TEST_F(CacheLifecycleTest, StorePublishesAtomicallyAndLeavesNoTempFiles) {
  TempDir Dir("atomic");
  MeasurementCache Cache(Dir.Path.string());
  ASSERT_EQ(Cache.store(*Db, Key), MeasurementCacheError::None);
  EXPECT_TRUE(Cache.exists(Key));
  for (const auto &Entry : std::filesystem::directory_iterator(Dir.Path))
    EXPECT_EQ(Entry.path().string().find(".tmp."), std::string::npos)
        << Entry.path();
  // The manifest records the entry with its true size.
  std::string Manifest = readFile(manifestPath(Dir));
  EXPECT_NE(Manifest.find(measurementCacheFileName(Key)), std::string::npos);
  const std::uint64_t Size =
      std::filesystem::file_size(Dir.Path / measurementCacheFileName(Key));
  EXPECT_NE(Manifest.find(std::to_string(Size)), std::string::npos);
}

TEST_F(CacheLifecycleTest, LoadRoundTripsThroughTheBackend) {
  TempDir Dir("roundtrip");
  MeasurementCache Cache(Dir.Path.string());
  ASSERT_EQ(Cache.store(*Db, Key), MeasurementCacheError::None);
  MeasurementLoadResult R = Cache.load(*TheSuite, makeNehalem(), Targets, Key);
  ASSERT_TRUE(R) << measurementCacheErrorName(R.Error) << ": " << R.Message;
  EXPECT_EQ(serializeMeasurements(*R.Db, Key), serializeMeasurements(*Db, Key));
  // An absent key is the typed Io error, not undefined behaviour.
  MeasurementLoadResult Missing =
      Cache.load(*TheSuite, makeNehalem(), Targets, Key + 1);
  EXPECT_FALSE(Missing);
  EXPECT_EQ(Missing.Error, MeasurementCacheError::Io);
}

TEST_F(CacheLifecycleTest, SaveMeasurementsFileLeavesNoTempBehind) {
  TempDir Dir("plain_save");
  std::string Path = (Dir.Path / "direct.v1").string();
  ASSERT_TRUE(saveMeasurementsFile(Path, *Db, Key));
  MeasurementLoadResult R =
      loadMeasurementsFile(Path, *TheSuite, makeNehalem(), Targets, Key);
  EXPECT_TRUE(R) << R.Message;
  std::size_t Files = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir.Path)) {
    (void)Entry;
    ++Files;
  }
  EXPECT_EQ(Files, 1u);
}

//===----------------------------------------------------------------------===//
// Eviction
//===----------------------------------------------------------------------===//

TEST_F(CacheLifecycleTest, PruneKeepsTheMostRecentlyUsedEntries) {
  TempDir Dir("lru");
  MeasurementCache Cache(Dir.Path.string());
  // Five distinct keys over the same payload bytes (store() stamps the
  // key it is given; only the file names and manifest rows differ).
  std::vector<std::uint64_t> Keys = {Key, Key + 1, Key + 2, Key + 3, Key + 4};
  for (std::uint64_t K : Keys)
    ASSERT_EQ(Cache.store(*Db, K), MeasurementCacheError::None);
  const std::uint64_t EntryBytes = std::filesystem::file_size(
      Dir.Path / measurementCacheFileName(Keys[0]));

  // Ascending access times: Keys[4] is the most recently used.
  std::vector<CacheEntry> Entries;
  const std::int64_t Now = nowSeconds();
  for (std::size_t I = 0; I < Keys.size(); ++I)
    Entries.push_back({measurementCacheFileName(Keys[I]), EntryBytes,
                       Now - 1000 + static_cast<std::int64_t>(100 * I)});
  writeManifest(Dir, Entries);

  // Budget for exactly two entries: the two newest survive.
  CachePruneStats Stats = Cache.prune(2 * EntryBytes + EntryBytes / 2, 0);
  EXPECT_FALSE(Stats.LockTimedOut);
  EXPECT_FALSE(Stats.RebuiltFromScan);
  EXPECT_EQ(Stats.Entries, Keys.size());
  EXPECT_EQ(Stats.Removed, Keys.size() - 2);
  EXPECT_EQ(Stats.BytesAfter, 2 * EntryBytes);
  EXPECT_LE(Stats.BytesAfter, 2 * EntryBytes + EntryBytes / 2);
  EXPECT_FALSE(Cache.exists(Keys[0]));
  EXPECT_FALSE(Cache.exists(Keys[1]));
  EXPECT_FALSE(Cache.exists(Keys[2]));
  EXPECT_TRUE(Cache.exists(Keys[3]));
  EXPECT_TRUE(Cache.exists(Keys[4]));
}

TEST_F(CacheLifecycleTest, PruneEvictsEntriesPastTheAgeBound) {
  TempDir Dir("age");
  MeasurementCache Cache(Dir.Path.string());
  ASSERT_EQ(Cache.store(*Db, Key), MeasurementCacheError::None);
  ASSERT_EQ(Cache.store(*Db, Key + 1), MeasurementCacheError::None);
  const std::uint64_t EntryBytes = std::filesystem::file_size(
      Dir.Path / measurementCacheFileName(Key));

  const std::int64_t Now = nowSeconds();
  writeManifest(Dir, {{measurementCacheFileName(Key), EntryBytes, Now - 10},
                      {measurementCacheFileName(Key + 1), EntryBytes,
                       Now - 100000}});
  CachePruneStats Stats = Cache.prune(0, /*MaxAgeSeconds=*/3600);
  EXPECT_EQ(Stats.Removed, 1u);
  EXPECT_TRUE(Cache.exists(Key));
  EXPECT_FALSE(Cache.exists(Key + 1));
}

TEST_F(CacheLifecycleTest, CorruptManifestFallsBackToDirectoryRescan) {
  TempDir Dir("corrupt_manifest");
  MeasurementCache Cache(Dir.Path.string());
  for (std::uint64_t K : {Key, Key + 1, Key + 2})
    ASSERT_EQ(Cache.store(*Db, K), MeasurementCacheError::None);
  std::ofstream(manifestPath(Dir), std::ios::trunc)
      << "this is not a manifest\n\x01\x02 garbage";

  // An unbounded prune over the damaged manifest removes nothing, scans
  // the directory instead, and heals the manifest on the way out.
  CachePruneStats Stats = Cache.prune(0, 0);
  EXPECT_TRUE(Stats.RebuiltFromScan);
  EXPECT_EQ(Stats.Entries, 3u);
  EXPECT_EQ(Stats.Removed, 0u);
  for (std::uint64_t K : {Key, Key + 1, Key + 2})
    EXPECT_TRUE(Cache.exists(K));
  std::string Healed = readFile(manifestPath(Dir));
  EXPECT_EQ(Healed.find("garbage"), std::string::npos);
  EXPECT_NE(Healed.find(measurementCacheFileName(Key)), std::string::npos);

  // The healed manifest is authoritative again: a byte-budget prune
  // now bounds the directory without a rescan.
  const std::uint64_t EntryBytes = std::filesystem::file_size(
      Dir.Path / measurementCacheFileName(Key));
  CachePruneStats Bounded = Cache.prune(EntryBytes, 0);
  EXPECT_FALSE(Bounded.RebuiltFromScan);
  EXPECT_EQ(Bounded.Removed, 2u);
  EXPECT_LE(Bounded.BytesAfter, EntryBytes);
}

TEST_F(CacheLifecycleTest, PruneToOneByteEmptiesTheCache) {
  TempDir Dir("one_byte");
  MeasurementCache Cache(Dir.Path.string());
  ASSERT_EQ(Cache.store(*Db, Key), MeasurementCacheError::None);
  CachePruneStats Stats = Cache.prune(1, 0);
  EXPECT_EQ(Stats.Removed, 1u);
  EXPECT_EQ(Stats.BytesAfter, 0u);
  EXPECT_FALSE(Cache.exists(Key));
}

//===----------------------------------------------------------------------===//
// Typed lock errors
//===----------------------------------------------------------------------===//

TEST_F(CacheLifecycleTest, StoreReportsLockTimeoutWhileEntryLockIsHeld) {
  TempDir Dir("lock_timeout");
  MeasurementCache Cache(Dir.Path.string());
  Cache.LockOptions.TimeoutMs = 60;
  Cache.LockOptions.InitialBackoffMs = 1;

  FileLock Holder(Cache.entryLockPath(Key));
  ASSERT_TRUE(Holder.acquire());
  std::string Message;
  EXPECT_EQ(Cache.store(*Db, Key, /*EntryLockHeld=*/false, &Message),
            MeasurementCacheError::LockTimeout);
  EXPECT_FALSE(Message.empty());
  EXPECT_FALSE(Cache.exists(Key)) << "a timed-out store must write nothing";
  EXPECT_STREQ(measurementCacheErrorName(MeasurementCacheError::LockTimeout),
               "lock_timeout");

  // A caller that already holds the entry lock stores through it.
  EXPECT_EQ(Cache.store(*Db, Key, /*EntryLockHeld=*/true),
            MeasurementCacheError::None);
  EXPECT_TRUE(Cache.exists(Key));
}

//===----------------------------------------------------------------------===//
// Cross-process cold-run coordination
//===----------------------------------------------------------------------===//

TEST_F(CacheLifecycleTest, ConcurrentForkedColdBuildsSimulateExactlyOnce) {
  TempDir Dir("fork_race");
  constexpr int NumChildren = 3;

  std::vector<pid_t> Children;
  for (int C = 0; C < NumChildren; ++C) {
    pid_t Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: one cold buildMeasurementDatabase against the shared
      // directory, then report what happened through its own counters.
      obs::MetricsRegistry::global().reset();
      obs::setEnabled(true);
      DatabaseBuildOptions Options;
      Options.CacheDir = Dir.Path.string();
      auto Built =
          buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets, Options);
      if (!Built)
        ::_exit(2);
      std::string Bytes = serializeMeasurements(*Built, Key);
      std::ofstream Out(Dir.Path / ("child-" + std::to_string(C)),
                        std::ios::trunc);
      Out << obs::counterTotal("db.cache.stores") << " "
          << obs::counterTotal("db.cache.hits") << " "
          << obs::counterTotal("sim.execute") << " " << Bytes.size() << "\n";
      Out.flush();
      ::_exit(Out ? 0 : 2);
    }
    Children.push_back(Pid);
  }
  for (pid_t Pid : Children) {
    int St = 0;
    ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
    ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
  }

  std::uint64_t TotalStores = 0, TotalHits = 0, SimulatingChildren = 0;
  std::vector<std::uint64_t> Sizes;
  for (int C = 0; C < NumChildren; ++C) {
    std::ifstream In(Dir.Path / ("child-" + std::to_string(C)));
    std::uint64_t Stores = 0, Hits = 0, Sims = 0, Size = 0;
    ASSERT_TRUE(In >> Stores >> Hits >> Sims >> Size);
    TotalStores += Stores;
    TotalHits += Hits;
    SimulatingChildren += Sims > 0 ? 1 : 0;
    Sizes.push_back(Size);
  }
  // The contention guarantee: one simulation and one store across the
  // fleet, everyone else loads, and every child ends with the same
  // database bytes.
  EXPECT_EQ(TotalStores, 1u);
  EXPECT_EQ(SimulatingChildren, 1u);
  EXPECT_EQ(TotalHits, static_cast<std::uint64_t>(NumChildren) - 1);
  for (std::uint64_t Size : Sizes)
    EXPECT_EQ(Size, Sizes.front());
  // And the published entry is loadable by a fresh process.
  MeasurementCache Cache(Dir.Path.string());
  EXPECT_TRUE(Cache.exists(Key));
}

TEST_F(CacheLifecycleTest, BuildAutoPrunesWhenAByteBudgetIsConfigured) {
  TempDir Dir("auto_prune");
  // Seed an older entry under a different key, then build with a budget
  // only big enough for one entry: the store must evict the older one.
  MeasurementCache Cache(Dir.Path.string());
  ASSERT_EQ(Cache.store(*Db, Key + 99), MeasurementCacheError::None);
  const std::uint64_t EntryBytes = std::filesystem::file_size(
      Dir.Path / measurementCacheFileName(Key + 99));
  writeManifest(Dir, {{measurementCacheFileName(Key + 99), EntryBytes,
                       nowSeconds() - 5000}});

  DatabaseBuildOptions Options;
  Options.CacheDir = Dir.Path.string();
  Options.CacheMaxBytes = EntryBytes + EntryBytes / 2;
  auto Built =
      buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets, Options);
  ASSERT_TRUE(Built);
  EXPECT_TRUE(Cache.exists(Key)) << "the fresh entry survives the prune";
  EXPECT_FALSE(Cache.exists(Key + 99)) << "the LRU entry is evicted";
}
