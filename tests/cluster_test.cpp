//===- tests/cluster_test.cpp - Normalization, Ward clustering, elbow -----===//

#include "fgbs/cluster/Hierarchical.h"

#include "fgbs/support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace fgbs;

namespace {

/// Three well-separated Gaussian blobs in 2D, 10 points each.
FeatureTable threeBlobs(std::uint64_t Seed = 123) {
  Rng R(Seed);
  FeatureTable Points;
  const double Centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto &Center : Centers)
    for (int I = 0; I < 10; ++I)
      Points.push_back(
          {Center[0] + R.normal(0.0, 0.3), Center[1] + R.normal(0.0, 0.3)});
  return Points;
}

} // namespace

TEST(Normalization, ZeroMeanUnitVariance) {
  FeatureTable Points = {{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  FeatureTable Norm = normalizeFeatures(Points);
  for (std::size_t D = 0; D < 2; ++D) {
    double Mean = 0.0;
    double Var = 0.0;
    for (const auto &P : Norm)
      Mean += P[D];
    Mean /= 3.0;
    for (const auto &P : Norm)
      Var += (P[D] - Mean) * (P[D] - Mean);
    Var /= 3.0;
    EXPECT_NEAR(Mean, 0.0, 1e-12);
    EXPECT_NEAR(Var, 1.0, 1e-12);
  }
}

TEST(Normalization, ConstantColumnBecomesZero) {
  FeatureTable Points = {{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  FeatureTable Norm = normalizeFeatures(Points);
  for (const auto &P : Norm)
    EXPECT_DOUBLE_EQ(P[0], 0.0);
}

TEST(Normalization, StatsComputed) {
  FeatureTable Points = {{2.0}, {4.0}, {6.0}};
  NormalizationStats S = computeNormalization(Points);
  EXPECT_DOUBLE_EQ(S.Mean[0], 4.0);
  EXPECT_NEAR(S.Std[0], std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Clustering, MembersPartitionPoints) {
  Clustering C;
  C.K = 2;
  C.Assignment = {0, 1, 0, 1, 0};
  auto M = C.members();
  ASSERT_EQ(M.size(), 2u);
  EXPECT_EQ(M[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(M[1], (std::vector<std::size_t>{1, 3}));
}

TEST(Clustering, CentroidAndMedoid) {
  FeatureTable Points = {{0.0}, {1.0}, {5.0}};
  std::vector<std::size_t> Members = {0, 1, 2};
  std::vector<double> C = centroidOf(Points, Members);
  EXPECT_DOUBLE_EQ(C[0], 2.0);
  // Closest to 2.0 is point 1 (value 1.0).
  EXPECT_EQ(medoidOf(Points, Members), 1u);
}

TEST(Clustering, VarianceZeroForSingletons) {
  FeatureTable Points = {{1.0}, {2.0}, {3.0}};
  Clustering C;
  C.K = 3;
  C.Assignment = {0, 1, 2};
  EXPECT_DOUBLE_EQ(withinClusterVariance(Points, C), 0.0);
}

TEST(Clustering, TotalVarianceMatchesSingleCluster) {
  FeatureTable Points = {{0.0}, {2.0}};
  EXPECT_DOUBLE_EQ(totalVariance(Points), 2.0); // (1)^2 + (1)^2.
}

TEST(Hierarchical, RecoverThreeBlobsWithWard) {
  FeatureTable Points = threeBlobs();
  Dendrogram Tree = hierarchicalCluster(Points, Linkage::Ward);
  Clustering C = Tree.cut(3);
  // Each blob of 10 consecutive points must share one label.
  for (int Blob = 0; Blob < 3; ++Blob)
    for (int I = 1; I < 10; ++I)
      EXPECT_EQ(C.Assignment[Blob * 10 + I], C.Assignment[Blob * 10])
          << "blob " << Blob;
  // And the three labels must differ.
  std::set<int> Labels(C.Assignment.begin(), C.Assignment.end());
  EXPECT_EQ(Labels.size(), 3u);
}

class AllLinkages : public ::testing::TestWithParam<Linkage> {};

TEST_P(AllLinkages, RecoversSeparatedBlobs) {
  FeatureTable Points = threeBlobs(77);
  Dendrogram Tree = hierarchicalCluster(Points, GetParam());
  Clustering C = Tree.cut(3);
  std::set<int> Labels(C.Assignment.begin(), C.Assignment.end());
  EXPECT_EQ(Labels.size(), 3u);
  for (int Blob = 0; Blob < 3; ++Blob)
    for (int I = 1; I < 10; ++I)
      EXPECT_EQ(C.Assignment[Blob * 10 + I], C.Assignment[Blob * 10]);
}

INSTANTIATE_TEST_SUITE_P(Linkages, AllLinkages,
                         ::testing::Values(Linkage::Ward, Linkage::Single,
                                           Linkage::Complete,
                                           Linkage::Average));

TEST(Dendrogram, ShapeValidation) {
  // Regression for the constructor assert's operator-precedence bug:
  // `A || B && C` bound as `A || (B && C)`, so an empty-leaves dendrogram
  // with nonempty merges slipped through the empty-leaves arm.
  std::vector<MergeStep> NoMerges;
  std::vector<MergeStep> OneMerge = {{0, 1, 1.0, 2}};
  std::vector<MergeStep> TwoMerges = {{0, 1, 1.0, 2}, {3, 2, 2.0, 3}};
  EXPECT_TRUE(Dendrogram::isValidShape(0, NoMerges));
  EXPECT_FALSE(Dendrogram::isValidShape(0, OneMerge));
  EXPECT_TRUE(Dendrogram::isValidShape(1, NoMerges));
  EXPECT_FALSE(Dendrogram::isValidShape(1, OneMerge));
  EXPECT_TRUE(Dendrogram::isValidShape(2, OneMerge));
  EXPECT_TRUE(Dendrogram::isValidShape(3, TwoMerges));
  EXPECT_FALSE(Dendrogram::isValidShape(3, OneMerge));
}

/// Random Gaussian points with distinct pairwise distances (almost
/// surely), for NN-chain vs naive equivalence checks.
FeatureTable randomPoints(std::size_t N, std::size_t Dim,
                          std::uint64_t Seed) {
  Rng R(Seed);
  FeatureTable Points(N, std::vector<double>(Dim));
  for (auto &P : Points)
    for (double &V : P)
      V = R.normal();
  return Points;
}

class ChainVsNaive : public ::testing::TestWithParam<Linkage> {};

TEST_P(ChainVsNaive, DendrogramsMatchMergeForMerge) {
  for (std::uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    for (std::size_t N : {2u, 3u, 7u, 17u, 33u, 64u}) {
      FeatureTable Points = randomPoints(N, 6, Seed * 1000 + N);
      Dendrogram Chain = hierarchicalCluster(Points, GetParam());
      Dendrogram Naive = hierarchicalClusterNaive(Points, GetParam());
      ASSERT_EQ(Chain.numLeaves(), Naive.numLeaves());
      ASSERT_EQ(Chain.merges().size(), Naive.merges().size());
      for (std::size_t I = 0; I < Chain.merges().size(); ++I) {
        const MergeStep &A = Chain.merges()[I];
        const MergeStep &B = Naive.merges()[I];
        EXPECT_EQ(A.Left, B.Left) << "merge " << I << " seed " << Seed;
        EXPECT_EQ(A.Right, B.Right) << "merge " << I << " seed " << Seed;
        EXPECT_EQ(A.Size, B.Size) << "merge " << I << " seed " << Seed;
        // Heights agree up to floating-point rounding: the two
        // algorithms apply the Lance-Williams updates in different
        // orders.
        EXPECT_NEAR(A.Height, B.Height,
                    1e-9 * std::max(1.0, std::abs(B.Height)))
            << "merge " << I << " seed " << Seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Linkages, ChainVsNaive,
                         ::testing::Values(Linkage::Ward, Linkage::Single,
                                           Linkage::Complete,
                                           Linkage::Average));

TEST(Hierarchical, ElbowMatchesPerCutRecomputation) {
  // The incremental one-pass elbow must agree with recomputing the
  // within-cluster variance from scratch at every cut.
  for (std::uint64_t Seed : {11u, 22u, 33u}) {
    FeatureTable Points = randomPoints(40, 5, Seed);
    Dendrogram Tree = hierarchicalCluster(Points);
    for (double Threshold : {0.001, 0.01, 0.05, 0.2}) {
      double Tss = totalVariance(Points);
      unsigned Expected = 24;
      double Previous = Tss;
      for (unsigned K = 2; K <= 24; ++K) {
        double Wss = withinClusterVariance(Points, Tree.cut(K));
        if (Previous - Wss < Threshold * Tss) {
          Expected = K - 1;
          break;
        }
        Previous = Wss;
      }
      EXPECT_EQ(elbowK(Points, Tree, 24, Threshold), Expected)
          << "seed " << Seed << " threshold " << Threshold;
    }
  }
}

TEST(Hierarchical, CutBoundsRespected) {
  FeatureTable Points = threeBlobs();
  Dendrogram Tree = hierarchicalCluster(Points);
  EXPECT_EQ(Tree.cut(1).K, 1u);
  EXPECT_EQ(Tree.cut(0).K, 1u); // Clamped.
  EXPECT_EQ(Tree.cut(30).K, 30u);
  EXPECT_EQ(Tree.cut(100).K, 30u); // Clamped to leaf count.
}

TEST(Hierarchical, CutKGivesKLabels) {
  FeatureTable Points = threeBlobs();
  Dendrogram Tree = hierarchicalCluster(Points);
  for (unsigned K = 1; K <= 30; ++K) {
    Clustering C = Tree.cut(K);
    std::set<int> Labels(C.Assignment.begin(), C.Assignment.end());
    EXPECT_EQ(Labels.size(), K);
    EXPECT_EQ(*std::min_element(C.Assignment.begin(), C.Assignment.end()), 0);
    EXPECT_EQ(*std::max_element(C.Assignment.begin(), C.Assignment.end()),
              static_cast<int>(K) - 1);
  }
}

TEST(Hierarchical, WardHeightsMonotone) {
  FeatureTable Points = threeBlobs(99);
  Dendrogram Tree = hierarchicalCluster(Points, Linkage::Ward);
  const auto &Merges = Tree.merges();
  for (std::size_t I = 1; I < Merges.size(); ++I)
    EXPECT_GE(Merges[I].Height, Merges[I - 1].Height - 1e-9);
}

TEST(Hierarchical, WssDecreasesWithK) {
  FeatureTable Points = threeBlobs(55);
  Dendrogram Tree = hierarchicalCluster(Points);
  double Prev = withinClusterVariance(Points, Tree.cut(1));
  for (unsigned K = 2; K <= 10; ++K) {
    double Wss = withinClusterVariance(Points, Tree.cut(K));
    EXPECT_LE(Wss, Prev + 1e-9);
    Prev = Wss;
  }
}

TEST(Hierarchical, SinglePointDendrogram) {
  FeatureTable Points = {{1.0, 2.0}};
  Dendrogram Tree = hierarchicalCluster(Points);
  EXPECT_EQ(Tree.numLeaves(), 1u);
  Clustering C = Tree.cut(1);
  EXPECT_EQ(C.Assignment, (std::vector<int>{0}));
}

TEST(Hierarchical, ElbowFindsBlobCount) {
  FeatureTable Points = threeBlobs(31);
  Dendrogram Tree = hierarchicalCluster(Points);
  unsigned K = elbowK(Points, Tree, 24, 0.01);
  EXPECT_EQ(K, 3u);
}

TEST(Hierarchical, ElbowDegenerateCases) {
  FeatureTable Identical = {{1.0}, {1.0}, {1.0}};
  Dendrogram Tree = hierarchicalCluster(Identical);
  // Zero total variance: nothing to improve.
  EXPECT_EQ(elbowK(Identical, Tree, 10), 1u);
}

TEST(RandomClustering, ExactlyKNonEmpty) {
  for (unsigned K : {1u, 3u, 7u, 20u}) {
    Clustering C = randomClustering(20, K, /*Seed=*/K * 17);
    EXPECT_EQ(C.K, K);
    auto M = C.members();
    for (const auto &Members : M)
      EXPECT_FALSE(Members.empty());
  }
}

TEST(RandomClustering, DeterministicBySeed) {
  Clustering A = randomClustering(30, 5, 42);
  Clustering B = randomClustering(30, 5, 42);
  EXPECT_EQ(A.Assignment, B.Assignment);
  Clustering C = randomClustering(30, 5, 43);
  EXPECT_NE(A.Assignment, C.Assignment);
}
