//===- tests/cluster_test.cpp - Normalization, Ward clustering, elbow -----===//

#include "fgbs/cluster/Hierarchical.h"

#include "fgbs/support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace fgbs;

namespace {

/// Three well-separated Gaussian blobs in 2D, 10 points each.
FeatureTable threeBlobs(std::uint64_t Seed = 123) {
  Rng R(Seed);
  FeatureTable Points;
  const double Centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto &Center : Centers)
    for (int I = 0; I < 10; ++I)
      Points.push_back(
          {Center[0] + R.normal(0.0, 0.3), Center[1] + R.normal(0.0, 0.3)});
  return Points;
}

} // namespace

TEST(Normalization, ZeroMeanUnitVariance) {
  FeatureTable Points = {{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  FeatureTable Norm = normalizeFeatures(Points);
  for (std::size_t D = 0; D < 2; ++D) {
    double Mean = 0.0;
    double Var = 0.0;
    for (const auto &P : Norm)
      Mean += P[D];
    Mean /= 3.0;
    for (const auto &P : Norm)
      Var += (P[D] - Mean) * (P[D] - Mean);
    Var /= 3.0;
    EXPECT_NEAR(Mean, 0.0, 1e-12);
    EXPECT_NEAR(Var, 1.0, 1e-12);
  }
}

TEST(Normalization, ConstantColumnBecomesZero) {
  FeatureTable Points = {{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  FeatureTable Norm = normalizeFeatures(Points);
  for (const auto &P : Norm)
    EXPECT_DOUBLE_EQ(P[0], 0.0);
}

TEST(Normalization, StatsComputed) {
  FeatureTable Points = {{2.0}, {4.0}, {6.0}};
  NormalizationStats S = computeNormalization(Points);
  EXPECT_DOUBLE_EQ(S.Mean[0], 4.0);
  EXPECT_NEAR(S.Std[0], std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Clustering, MembersPartitionPoints) {
  Clustering C;
  C.K = 2;
  C.Assignment = {0, 1, 0, 1, 0};
  auto M = C.members();
  ASSERT_EQ(M.size(), 2u);
  EXPECT_EQ(M[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(M[1], (std::vector<std::size_t>{1, 3}));
}

TEST(Clustering, CentroidAndMedoid) {
  FeatureTable Points = {{0.0}, {1.0}, {5.0}};
  std::vector<std::size_t> Members = {0, 1, 2};
  std::vector<double> C = centroidOf(Points, Members);
  EXPECT_DOUBLE_EQ(C[0], 2.0);
  // Closest to 2.0 is point 1 (value 1.0).
  EXPECT_EQ(medoidOf(Points, Members), 1u);
}

TEST(Clustering, VarianceZeroForSingletons) {
  FeatureTable Points = {{1.0}, {2.0}, {3.0}};
  Clustering C;
  C.K = 3;
  C.Assignment = {0, 1, 2};
  EXPECT_DOUBLE_EQ(withinClusterVariance(Points, C), 0.0);
}

TEST(Clustering, TotalVarianceMatchesSingleCluster) {
  FeatureTable Points = {{0.0}, {2.0}};
  EXPECT_DOUBLE_EQ(totalVariance(Points), 2.0); // (1)^2 + (1)^2.
}

TEST(Hierarchical, RecoverThreeBlobsWithWard) {
  FeatureTable Points = threeBlobs();
  Dendrogram Tree = hierarchicalCluster(Points, Linkage::Ward);
  Clustering C = Tree.cut(3);
  // Each blob of 10 consecutive points must share one label.
  for (int Blob = 0; Blob < 3; ++Blob)
    for (int I = 1; I < 10; ++I)
      EXPECT_EQ(C.Assignment[Blob * 10 + I], C.Assignment[Blob * 10])
          << "blob " << Blob;
  // And the three labels must differ.
  std::set<int> Labels(C.Assignment.begin(), C.Assignment.end());
  EXPECT_EQ(Labels.size(), 3u);
}

class AllLinkages : public ::testing::TestWithParam<Linkage> {};

TEST_P(AllLinkages, RecoversSeparatedBlobs) {
  FeatureTable Points = threeBlobs(77);
  Dendrogram Tree = hierarchicalCluster(Points, GetParam());
  Clustering C = Tree.cut(3);
  std::set<int> Labels(C.Assignment.begin(), C.Assignment.end());
  EXPECT_EQ(Labels.size(), 3u);
  for (int Blob = 0; Blob < 3; ++Blob)
    for (int I = 1; I < 10; ++I)
      EXPECT_EQ(C.Assignment[Blob * 10 + I], C.Assignment[Blob * 10]);
}

INSTANTIATE_TEST_SUITE_P(Linkages, AllLinkages,
                         ::testing::Values(Linkage::Ward, Linkage::Single,
                                           Linkage::Complete,
                                           Linkage::Average));

TEST(Hierarchical, CutBoundsRespected) {
  FeatureTable Points = threeBlobs();
  Dendrogram Tree = hierarchicalCluster(Points);
  EXPECT_EQ(Tree.cut(1).K, 1u);
  EXPECT_EQ(Tree.cut(0).K, 1u); // Clamped.
  EXPECT_EQ(Tree.cut(30).K, 30u);
  EXPECT_EQ(Tree.cut(100).K, 30u); // Clamped to leaf count.
}

TEST(Hierarchical, CutKGivesKLabels) {
  FeatureTable Points = threeBlobs();
  Dendrogram Tree = hierarchicalCluster(Points);
  for (unsigned K = 1; K <= 30; ++K) {
    Clustering C = Tree.cut(K);
    std::set<int> Labels(C.Assignment.begin(), C.Assignment.end());
    EXPECT_EQ(Labels.size(), K);
    EXPECT_EQ(*std::min_element(C.Assignment.begin(), C.Assignment.end()), 0);
    EXPECT_EQ(*std::max_element(C.Assignment.begin(), C.Assignment.end()),
              static_cast<int>(K) - 1);
  }
}

TEST(Hierarchical, WardHeightsMonotone) {
  FeatureTable Points = threeBlobs(99);
  Dendrogram Tree = hierarchicalCluster(Points, Linkage::Ward);
  const auto &Merges = Tree.merges();
  for (std::size_t I = 1; I < Merges.size(); ++I)
    EXPECT_GE(Merges[I].Height, Merges[I - 1].Height - 1e-9);
}

TEST(Hierarchical, WssDecreasesWithK) {
  FeatureTable Points = threeBlobs(55);
  Dendrogram Tree = hierarchicalCluster(Points);
  double Prev = withinClusterVariance(Points, Tree.cut(1));
  for (unsigned K = 2; K <= 10; ++K) {
    double Wss = withinClusterVariance(Points, Tree.cut(K));
    EXPECT_LE(Wss, Prev + 1e-9);
    Prev = Wss;
  }
}

TEST(Hierarchical, SinglePointDendrogram) {
  FeatureTable Points = {{1.0, 2.0}};
  Dendrogram Tree = hierarchicalCluster(Points);
  EXPECT_EQ(Tree.numLeaves(), 1u);
  Clustering C = Tree.cut(1);
  EXPECT_EQ(C.Assignment, (std::vector<int>{0}));
}

TEST(Hierarchical, ElbowFindsBlobCount) {
  FeatureTable Points = threeBlobs(31);
  Dendrogram Tree = hierarchicalCluster(Points);
  unsigned K = elbowK(Points, Tree, 24, 0.01);
  EXPECT_EQ(K, 3u);
}

TEST(Hierarchical, ElbowDegenerateCases) {
  FeatureTable Identical = {{1.0}, {1.0}, {1.0}};
  Dendrogram Tree = hierarchicalCluster(Identical);
  // Zero total variance: nothing to improve.
  EXPECT_EQ(elbowK(Identical, Tree, 10), 1u);
}

TEST(RandomClustering, ExactlyKNonEmpty) {
  for (unsigned K : {1u, 3u, 7u, 20u}) {
    Clustering C = randomClustering(20, K, /*Seed=*/K * 17);
    EXPECT_EQ(C.K, K);
    auto M = C.members();
    for (const auto &Members : M)
      EXPECT_FALSE(Members.empty());
  }
}

TEST(RandomClustering, DeterministicBySeed) {
  Clustering A = randomClustering(30, 5, 42);
  Clustering B = randomClustering(30, 5, 42);
  EXPECT_EQ(A.Assignment, B.Assignment);
  Clustering C = randomClustering(30, 5, 43);
  EXPECT_NE(A.Assignment, C.Assignment);
}
