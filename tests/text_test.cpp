//===- tests/text_test.cpp - Textual codelet format ------------------------===//

#include "fgbs/dsl/Text.h"

#include "fgbs/compiler/Compiler.h"
#include "fgbs/sim/Executor.h"
#include "fgbs/suites/Suites.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

const char *TriadText = R"(
# A classic triad with a scaled second invocation group.
codelet "demo/triad" app "demo" {
  pattern "DP: triad";
  array a dp 1048576;
  array x dp 1048576;
  loops 1048576 outer 2;
  invocations 10;
  invocations 30 scale 0.5;
  store a[1] = x[1] + (1 dp * a[1]);
}
)";

Codelet parseOrDie(std::string_view Text) {
  ParseResult<Codelet> R = parseCodelet(Text);
  if (auto *E = std::get_if<ParseError>(&R))
    ADD_FAILURE() << E->render();
  return std::move(std::get<Codelet>(R));
}

ParseError errorOf(std::string_view Text) {
  ParseResult<Codelet> R = parseCodelet(Text);
  EXPECT_TRUE(std::holds_alternative<ParseError>(R)) << "parse succeeded";
  if (auto *E = std::get_if<ParseError>(&R))
    return *E;
  return {};
}

} // namespace

TEST(TextFormat, ParsesTriad) {
  Codelet C = parseOrDie(TriadText);
  EXPECT_EQ(C.Name, "demo/triad");
  EXPECT_EQ(C.App, "demo");
  EXPECT_EQ(C.Pattern, "DP: triad");
  ASSERT_EQ(C.Arrays.size(), 2u);
  EXPECT_EQ(C.Arrays[0].Name, "a");
  EXPECT_EQ(C.Arrays[0].NumElements, 1048576u);
  EXPECT_EQ(C.Nest.InnerTripCount, 1048576u);
  EXPECT_EQ(C.Nest.OuterIterations, 2u);
  EXPECT_EQ(C.totalInvocations(), 40u);
  EXPECT_DOUBLE_EQ(C.averageDatasetScale(), (10 + 30 * 0.5) / 40.0);
  ASSERT_EQ(C.Body.size(), 1u);
  EXPECT_EQ(C.Body[0].Kind, StmtKind::Store);
  EXPECT_EQ(countLoads(*C.Body[0].Rhs), 2u);
}

TEST(TextFormat, ParsesAllStrides) {
  Codelet C = parseOrDie(R"(
codelet "s" {
  array a dp 4096;
  loops 4096;
  store a[1] = a[0] + a[-1] + a[small(4)] + a[lda(512)] + a[stencil(3)];
})");
  std::vector<StrideClass> Seen;
  visitExpr(*C.Body[0].Rhs, [&Seen](const Expr &E) {
    if (E.Kind == ExprKind::Load)
      Seen.push_back(E.Ref.Stride);
  });
  EXPECT_EQ(Seen.size(), 5u);
  EXPECT_EQ(C.strideSummary(), "0 & 1 & -1 & small & LDA & stencil");
}

TEST(TextFormat, ParsesReduceRecurTraits) {
  Codelet C = parseOrDie(R"(
codelet "r" {
  array x dp 65536;
  array y sp 65536;
  loops 65536;
  trait context-sensitive;
  trait cache-state-sensitive;
  reduce add x[1] * x[1];
  reduce mul y[1];
  recur x[1] = x[1] - (1 dp / x[1]);
})");
  EXPECT_TRUE(C.Traits.CompilationContextSensitive);
  EXPECT_TRUE(C.Traits.CacheStateSensitive);
  ASSERT_EQ(C.Body.size(), 3u);
  EXPECT_EQ(C.Body[0].Kind, StmtKind::Reduction);
  EXPECT_EQ(C.Body[1].ReduceOp, BinOp::Mul);
  EXPECT_EQ(C.Body[2].Kind, StmtKind::Recurrence);
}

TEST(TextFormat, ParsesUnaryFunctions) {
  Codelet C = parseOrDie(R"(
codelet "u" {
  array x dp 65536;
  loops 65536;
  store x[1] = sqrt(x[1]) + exp(x[1]) * abs(x[1]);
})");
  unsigned Sqrt = 0;
  unsigned Exp = 0;
  unsigned Abs = 0;
  visitExpr(*C.Body[0].Rhs, [&](const Expr &E) {
    if (E.Kind != ExprKind::Unary)
      return;
    Sqrt += E.Un == UnOp::Sqrt;
    Exp += E.Un == UnOp::Exp;
    Abs += E.Un == UnOp::Abs;
  });
  EXPECT_EQ(Sqrt, 1u);
  EXPECT_EQ(Exp, 1u);
  EXPECT_EQ(Abs, 1u);
}

TEST(TextFormat, PrecedenceMulBeforeAdd) {
  Codelet C = parseOrDie(R"(
codelet "p" {
  array x dp 65536;
  loops 65536;
  reduce add x[1] + x[1] * x[1];
})");
  // Root of the RHS must be the add, with the mul nested on the right.
  const Expr &Root = *C.Body[0].Rhs;
  ASSERT_EQ(Root.Kind, ExprKind::Binary);
  EXPECT_EQ(Root.Bin, BinOp::Add);
  EXPECT_EQ(Root.Rhs->Bin, BinOp::Mul);
}

struct ErrorCase {
  const char *Text;
  const char *ExpectSubstring;
};

class TextFormatErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(TextFormatErrors, Diagnoses) {
  ParseError E = errorOf(GetParam().Text);
  EXPECT_NE(E.Message.find(GetParam().ExpectSubstring), std::string::npos)
      << "got: " << E.render();
  EXPECT_GT(E.Line, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TextFormatErrors,
    ::testing::Values(
        ErrorCase{"codelet \"x\" { loops 1; }", "no statements"},
        ErrorCase{"codelet \"x\" { array a dp 0; }", "must have elements"},
        ErrorCase{"codelet \"x\" { array a dp 8; array a dp 8; }",
                  "redeclared"},
        ErrorCase{"codelet \"x\" { array a dp 8; store b[1] = 1 dp; }",
                  "unknown array"},
        ErrorCase{"codelet \"x\" { array a dp 8; store a[7] = 1 dp; }",
                  "bare strides"},
        ErrorCase{"codelet \"x\" { array a dp 8; loops 0; }", "positive"},
        ErrorCase{"codelet \"x\" { array a qq 8; }", "unknown precision"},
        ErrorCase{"codelet \"x\" { trait wobbly; }", "unknown trait"},
        ErrorCase{"codelet \"x\" { bogus 3; }", "unknown codelet item"},
        ErrorCase{"codelet \"x\" { array a dp 8; reduce max a[1]; }",
                  "'add' or 'mul'"},
        ErrorCase{"codelet \"x", "unterminated string"},
        ErrorCase{"codelet \"x\" { array a dp 8; store a[1] = 1 dp; } junk",
                  "trailing input"},
        ErrorCase{"codelet \"x\" { array a dp 8; store a[1] = ; }",
                  "expected an expression"},
        ErrorCase{"codelet \"x\" { array a dp 8; store a[1] = 1 dp }",
                  "expected ';'"}));

TEST(TextFormat, RoundTripCodelet) {
  Codelet Original = parseOrDie(TriadText);
  std::string Printed = printCodelet(Original);
  Codelet Again = parseOrDie(Printed);
  // Canonical print of a reparsed codelet is a fixed point.
  EXPECT_EQ(printCodelet(Again), Printed);
  EXPECT_EQ(Again.Name, Original.Name);
  EXPECT_EQ(Again.totalInvocations(), Original.totalInvocations());
  EXPECT_EQ(Again.Body.size(), Original.Body.size());
}

TEST(TextFormat, RoundTripPreservesSemantics) {
  // The reparsed codelet must compile and execute identically.
  Codelet Original = parseOrDie(TriadText);
  Codelet Again = parseOrDie(printCodelet(Original));
  Machine M = makeNehalem();
  BinaryLoop L1 = compile(Original, M, CompilationContext::InApplication);
  BinaryLoop L2 = compile(Again, M, CompilationContext::InApplication);
  EXPECT_EQ(L1.Body.size(), L2.Body.size());
  EXPECT_EQ(L1.ElementsPerIter, L2.ElementsPerIter);
  Measurement M1 = execute(Original, M, {});
  Measurement M2 = execute(Again, M, {});
  EXPECT_DOUBLE_EQ(M1.TrueSeconds, M2.TrueSeconds);
}

TEST(TextFormat, RoundTripWholeNrSuite) {
  // Every NR codelet survives print -> parse -> print unchanged.
  Suite NR = makeNumericalRecipes();
  std::string Printed = printSuite(NR);
  ParseResult<Suite> Back = parseSuite(Printed);
  if (auto *E = std::get_if<ParseError>(&Back))
    FAIL() << E->render();
  Suite &Again = std::get<Suite>(Back);
  ASSERT_EQ(Again.Applications.size(), NR.Applications.size());
  EXPECT_EQ(Again.Name, NR.Name);
  EXPECT_EQ(printSuite(Again), Printed);
}

TEST(TextFormat, RoundTripWholeNasSuite) {
  Suite Nas = makeNasSer();
  std::string Printed = printSuite(Nas);
  ParseResult<Suite> Back = parseSuite(Printed);
  if (auto *E = std::get_if<ParseError>(&Back))
    FAIL() << E->render();
  Suite &Again = std::get<Suite>(Back);
  EXPECT_EQ(Again.numCodelets(), 67u);
  EXPECT_EQ(printSuite(Again), Printed);
  // Traits survive.
  bool SawCacheSensitive = false;
  for (const Codelet *C : Again.allCodelets())
    SawCacheSensitive |= C->Traits.CacheStateSensitive;
  EXPECT_TRUE(SawCacheSensitive);
}

TEST(TextFormat, SuiteParsesCoverage) {
  ParseResult<Suite> R = parseSuite(R"(
suite "s" {
  application "a" coverage 0.9 {
    codelet "a/k" {
      array x dp 1024;
      loops 1024;
      reduce add x[1];
    }
  }
})");
  ASSERT_TRUE(std::holds_alternative<Suite>(R));
  Suite &S = std::get<Suite>(R);
  EXPECT_DOUBLE_EQ(S.Applications[0].Coverage, 0.9);
  EXPECT_EQ(S.Applications[0].Codelets[0].App, "a");
}

TEST(TextFormat, CommentsIgnored) {
  Codelet C = parseOrDie(R"(
# leading comment
codelet "c" { # trailing comment
  array x dp 1024;   # about the array
  loops 1024;
  reduce add x[1];
})");
  EXPECT_EQ(C.Name, "c");
}

TEST(TextFormat, ErrorPositionsPointAtOffendingLine) {
  ParseError E = errorOf("codelet \"x\" {\n  array a dp 8;\n  bogus;\n}");
  EXPECT_EQ(E.Line, 3u);
}
