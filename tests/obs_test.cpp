//===- tests/obs_test.cpp - Telemetry: metrics, spans, reports, gate ------===//

#include "fgbs/obs/Gate.h"
#include "fgbs/obs/Json.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/obs/Trace.h"
#include "fgbs/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <thread>

using namespace fgbs;

namespace {

// Telemetry switches are process globals; every test runs from a clean,
// enabled registry and leaves everything off again.
class Obs : public ::testing::Test {
protected:
  void SetUp() override {
    obs::MetricsRegistry::global().reset();
    obs::TraceLog::global().clear();
    obs::setEnabled(true);
    obs::setTracingEnabled(false);
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::setTracingEnabled(false);
    obs::MetricsRegistry::global().reset();
    obs::TraceLog::global().clear();
  }
};

} // namespace

TEST_F(Obs, CounterAccumulates) {
  obs::Counter &C = obs::MetricsRegistry::global().counter("t.counter");
  C.add(3);
  C.increment();
  EXPECT_EQ(C.total(), 4u);
  C.reset();
  EXPECT_EQ(C.total(), 0u);
}

TEST_F(Obs, GaugeLastValueWins) {
  obs::Gauge &G = obs::MetricsRegistry::global().gauge("t.gauge");
  G.set(2.5);
  G.set(7.0);
  EXPECT_EQ(G.get(), 7.0);
}

TEST_F(Obs, RegistryReturnsStableHandles) {
  obs::MetricsRegistry &R = obs::MetricsRegistry::global();
  obs::Counter &A = R.counter("t.same");
  obs::Counter &B = R.counter("t.same");
  EXPECT_EQ(&A, &B);
  A.add(1);
  R.reset(); // zeroes, but the handle stays registered and valid
  B.add(2);
  EXPECT_EQ(R.snapshot().Counters.at("t.same"), 2u);
}

// The sharded counter must not lose updates when many threads hammer it
// through the real ThreadPool (more workers than shards would ever map
// 1:1, so slots collide and the fetch_add path is exercised).
TEST_F(Obs, CounterMergesConcurrentWriters) {
  obs::Counter &C = obs::MetricsRegistry::global().counter("t.stress");
  constexpr std::size_t Tasks = 64;
  constexpr std::uint64_t PerTask = 10000;
  ThreadPool Pool(8);
  Pool.parallelFor(0, Tasks, [&](std::size_t) {
    for (std::uint64_t I = 0; I < PerTask; ++I)
      C.increment();
  });
  EXPECT_EQ(C.total(), Tasks * PerTask);
}

TEST_F(Obs, HistogramMergesConcurrentWriters) {
  obs::Histogram &H = obs::MetricsRegistry::global().histogram("t.stress_h");
  constexpr std::size_t Tasks = 32;
  constexpr std::uint64_t PerTask = 1000;
  ThreadPool Pool(8);
  Pool.parallelFor(0, Tasks, [&](std::size_t Task) {
    for (std::uint64_t I = 0; I < PerTask; ++I)
      H.record(1000 * (Task + 1)); // 1us .. 32us, spread over buckets
  });
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, Tasks * PerTask);
  EXPECT_EQ(S.MinNs, 1000u);
  EXPECT_EQ(S.MaxNs, 1000u * Tasks);
  std::uint64_t BucketSum = 0;
  for (std::uint64_t B : S.Buckets)
    BucketSum += B;
  EXPECT_EQ(BucketSum, S.Count);
}

TEST(ObsHistogram, BucketBoundariesArePowerOfTwoMicroseconds) {
  // Bucket i covers (1000*2^(i-1), 1000*2^i]; bucket 0 starts at 0.
  EXPECT_EQ(obs::bucketUpperBoundNs(0), 1000u);
  EXPECT_EQ(obs::bucketUpperBoundNs(1), 2000u);
  EXPECT_EQ(obs::bucketUpperBoundNs(10), 1024000u);
  EXPECT_EQ(obs::bucketUpperBoundNs(obs::NumHistogramBuckets - 1), ~0ull);

  EXPECT_EQ(obs::Histogram::bucketFor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketFor(1000), 0u); // bounds are inclusive
  EXPECT_EQ(obs::Histogram::bucketFor(1001), 1u);
  EXPECT_EQ(obs::Histogram::bucketFor(2000), 1u);
  EXPECT_EQ(obs::Histogram::bucketFor(2001), 2u);
  for (unsigned I = 0; I + 1 < obs::NumHistogramBuckets; ++I) {
    EXPECT_EQ(obs::Histogram::bucketFor(obs::bucketUpperBoundNs(I)), I);
    EXPECT_EQ(obs::Histogram::bucketFor(obs::bucketUpperBoundNs(I) + 1), I + 1);
  }
  EXPECT_EQ(obs::Histogram::bucketFor(~0ull), obs::NumHistogramBuckets - 1);
}

TEST_F(Obs, HistogramTracksMinMaxMean) {
  obs::Histogram &H = obs::MetricsRegistry::global().histogram("t.mm");
  H.record(500);
  H.record(1500);
  H.record(4000);
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.MinNs, 500u);
  EXPECT_EQ(S.MaxNs, 4000u);
  EXPECT_DOUBLE_EQ(S.meanNs(), 2000.0);
}

// When telemetry is off, the macros must not register or record
// anything — the disabled path is the tier-1 default.  (Registrations
// from other tests survive reset(), so assert on this test's names.)
TEST_F(Obs, DisabledModeIsANoOp) {
  obs::Counter &Pre = obs::MetricsRegistry::global().counter("t.pre_reg");
  obs::setEnabled(false);
  FGBS_COUNTER_ADD("t.never", 5);
  FGBS_GAUGE_SET("t.never_g", 1.0);
  FGBS_HISTOGRAM_RECORD_NS("t.never_h", 100);
  Pre.add(0); // direct handle use still records; macros must not reach it
  { FGBS_SCOPED_TIMER("t.never_t"); }
  { FGBS_TRACE_SPAN("t.never_s"); }
  obs::MetricsSnapshot S = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(S.Counters.count("t.never"), 0u);
  EXPECT_EQ(S.Gauges.count("t.never_g"), 0u);
  EXPECT_EQ(S.Histograms.count("t.never_h"), 0u);
  EXPECT_EQ(S.Histograms.count("t.never_t"), 0u);
  EXPECT_EQ(S.Histograms.count("t.never_s"), 0u);
  EXPECT_TRUE(obs::TraceLog::global().events().empty());
}

TEST_F(Obs, MacrosRecordWhenEnabled) {
  FGBS_COUNTER_ADD("t.m_counter", 2);
  FGBS_COUNTER_ADD("t.m_counter", 3);
  FGBS_GAUGE_SET("t.m_gauge", 4.5);
  FGBS_HISTOGRAM_RECORD_NS("t.m_hist", 1234);
  obs::MetricsSnapshot S = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(S.Counters.at("t.m_counter"), 5u);
  EXPECT_EQ(S.Gauges.at("t.m_gauge"), 4.5);
  EXPECT_EQ(S.Histograms.at("t.m_hist").Count, 1u);
}

TEST_F(Obs, SpansNestPerThread) {
  obs::setTracingEnabled(true);
  {
    obs::TraceSpan Outer("t.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      obs::TraceSpan Inner("t.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::vector<obs::TraceEvent> Events = obs::TraceLog::global().events();
  ASSERT_EQ(Events.size(), 2u);
  // Ordered by start time: outer first, inner nested one level deeper
  // and contained within the outer interval.
  EXPECT_EQ(Events[0].Name, "t.outer");
  EXPECT_EQ(Events[0].Depth, 0u);
  EXPECT_EQ(Events[1].Name, "t.inner");
  EXPECT_EQ(Events[1].Depth, 1u);
  EXPECT_GE(Events[1].StartNs, Events[0].StartNs);
  EXPECT_LE(Events[1].StartNs + Events[1].DurationNs,
            Events[0].StartNs + Events[0].DurationNs);
  // Sibling after the nest returns to depth 0.
  { obs::TraceSpan After("t.after"); }
  EXPECT_EQ(obs::TraceLog::global().events().back().Depth, 0u);
}

TEST_F(Obs, SpanFeedsHistogramOfSameName) {
  { obs::TraceSpan Span("t.span_hist"); }
  obs::MetricsSnapshot S = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(S.Histograms.at("t.span_hist").Count, 1u);
}

TEST_F(Obs, ChromeTraceExportIsValidJson) {
  obs::setTracingEnabled(true);
  {
    obs::TraceSpan Outer("t.chrome");
    obs::TraceSpan Inner("t.chrome_inner");
  }
  std::ostringstream OS;
  obs::writeChromeTrace(OS, obs::TraceLog::global().events());
  std::optional<obs::JsonValue> Doc = obs::parseJson(OS.str());
  ASSERT_TRUE(Doc.has_value());
  const obs::JsonValue *Events = Doc->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->elements().size(), 2u);
  const obs::JsonValue &First = Events->elements()[0];
  EXPECT_EQ(First.find("ph")->string(), "X");
  EXPECT_EQ(First.find("name")->string(), "t.chrome");
}

TEST(ObsJson, ParsesScalarsArraysObjects) {
  std::optional<obs::JsonValue> V =
      obs::parseJson(R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null},)"
                     R"( "s": "x\nyA"})");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->find("a")->elements()[2].number(), -300.0);
  EXPECT_TRUE(V->find("b")->find("c")->boolean());
  EXPECT_TRUE(V->find("b")->find("d")->isNull());
  EXPECT_EQ(V->find("s")->string(), "x\nyA");
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_FALSE(obs::parseJson("").has_value());
  EXPECT_FALSE(obs::parseJson("{").has_value());
  EXPECT_FALSE(obs::parseJson("{\"a\": 1,}").has_value());
  EXPECT_FALSE(obs::parseJson("[1 2]").has_value());
  EXPECT_FALSE(obs::parseJson("\"unterminated").has_value());
  EXPECT_FALSE(obs::parseJson("{} trailing").has_value());
}

TEST(ObsJson, WriteParseRoundTripPreservesNumbers) {
  obs::JsonValue Doc = obs::JsonValue::object();
  Doc.set("int", obs::JsonValue(423024576.0));
  Doc.set("frac", obs::JsonValue(1062017.4432989692));
  Doc.set("tiny", obs::JsonValue(0.001));
  for (unsigned Indent : {0u, 2u}) {
    std::optional<obs::JsonValue> Back =
        obs::parseJson(obs::writeJson(Doc, Indent));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(Back->find("int")->number(), 423024576.0);
    EXPECT_EQ(Back->find("frac")->number(), 1062017.4432989692);
    EXPECT_EQ(Back->find("tiny")->number(), 0.001);
  }
}

TEST_F(Obs, RunReportRoundTripsThroughSchema) {
  FGBS_COUNTER_ADD("t.report_counter", 42);
  FGBS_GAUGE_SET("t.report_gauge", 3.5);
  FGBS_HISTOGRAM_RECORD_NS("t.report_hist", 1500);

  obs::RunInfo Info;
  Info.Name = "obs_test";
  Info.Threads = 4;
  std::map<std::string, double> Values{{"elbow_k", 18.0}};
  std::map<std::string, double> Benchmarks{{"BM_Fake/1", 123456.0}};
  obs::JsonValue Report =
      obs::buildRunReport(Info, obs::MetricsRegistry::global().snapshot(),
                          Values, Benchmarks);

  std::optional<obs::JsonValue> Back =
      obs::parseJson(obs::writeJson(Report, 2));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->find("schema")->string(), "fgbs.run.v1");
  EXPECT_EQ(Back->find("run")->find("name")->string(), "obs_test");
  EXPECT_EQ(Back->find("run")->find("threads")->number(), 4.0);
  EXPECT_EQ(Back->find("values")->find("elbow_k")->number(), 18.0);

  const obs::JsonValue *Metrics = Back->find("metrics");
  ASSERT_NE(Metrics, nullptr);
  EXPECT_EQ(Metrics->find("counters")->find("t.report_counter")->number(),
            42.0);
  EXPECT_EQ(Metrics->find("gauges")->find("t.report_gauge")->number(), 3.5);
  const obs::JsonValue *Hist =
      Metrics->find("histograms")->find("t.report_hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_EQ(Hist->find("count")->number(), 1.0);
  EXPECT_EQ(Hist->find("buckets")->elements().size(),
            obs::NumHistogramBuckets);
  // The overflow bucket has no upper bound.
  EXPECT_TRUE(
      Hist->find("buckets")->elements().back().find("le_ns")->isNull());

  std::map<std::string, double> BenchesBack = obs::benchmarksFromJson(*Back);
  EXPECT_EQ(BenchesBack.at("BM_Fake/1"), 123456.0);
}

TEST(ObsReport, ReadsFlatBaselineBenchmarks) {
  // The checked-in baseline predates fgbs.run.v1: a bare "benchmarks"
  // object of name -> ns numbers (or {"time_ns": ...} objects).
  std::optional<obs::JsonValue> Doc = obs::parseJson(
      R"({"benchmarks": {"BM_A": 100, "BM_B": {"time_ns": 200}}})");
  ASSERT_TRUE(Doc.has_value());
  std::map<std::string, double> B = obs::benchmarksFromJson(*Doc);
  EXPECT_EQ(B.at("BM_A"), 100.0);
  EXPECT_EQ(B.at("BM_B"), 200.0);
  EXPECT_TRUE(obs::benchmarksFromJson(obs::JsonValue::object()).empty());
}

namespace {

obs::JsonValue benchesDoc(std::map<std::string, double> Benches) {
  obs::JsonValue Inner = obs::JsonValue::object();
  for (const auto &[Name, Ns] : Benches)
    Inner.set(Name, obs::JsonValue(Ns));
  obs::JsonValue Doc = obs::JsonValue::object();
  Doc.set("benchmarks", std::move(Inner));
  return Doc;
}

} // namespace

TEST(ObsGate, ClassifiesRatiosAgainstThresholds) {
  obs::JsonValue Baseline = benchesDoc(
      {{"ok", 1000}, {"warn", 1000}, {"fail", 1000}, {"gone", 1000}});
  obs::JsonValue Results = benchesDoc(
      {{"ok", 1400}, {"warn", 2000}, {"fail", 3500}, {"fresh", 10}});
  obs::GateReport R = obs::compareBenchmarks(Baseline, Results, 1.5, 3.0);

  EXPECT_EQ(R.Compared, 3u);
  EXPECT_EQ(R.Warnings, 2u); // "warn" + missing "gone"
  EXPECT_EQ(R.Failures, 1u);
  EXPECT_FALSE(R.passed());

  std::map<std::string, obs::GateStatus> ByName;
  for (const obs::GateEntry &E : R.Entries)
    ByName[E.Name] = E.Status;
  EXPECT_EQ(ByName.at("ok"), obs::GateStatus::Ok);
  EXPECT_EQ(ByName.at("warn"), obs::GateStatus::Warn);
  EXPECT_EQ(ByName.at("fail"), obs::GateStatus::Fail);
  EXPECT_EQ(ByName.at("gone"), obs::GateStatus::MissingResult);
  EXPECT_EQ(ByName.at("fresh"), obs::GateStatus::NewBenchmark);
}

TEST(ObsGate, PassesAtBoundaryAndFailsWhenNothingCompared) {
  obs::JsonValue Baseline = benchesDoc({{"bm", 1000}});
  // Exactly the warn threshold still counts as Ok territory's edge: the
  // policy is strictly-greater-than.
  obs::GateReport AtWarn = obs::compareBenchmarks(
      Baseline, benchesDoc({{"bm", 1500}}), 1.5, 3.0);
  EXPECT_EQ(AtWarn.Warnings, 0u);
  EXPECT_TRUE(AtWarn.passed());

  // Faster than baseline is plain Ok.
  obs::GateReport Faster = obs::compareBenchmarks(
      Baseline, benchesDoc({{"bm", 10}}), 1.5, 3.0);
  EXPECT_TRUE(Faster.passed());

  // No overlap at all must not silently pass.
  obs::GateReport Empty = obs::compareBenchmarks(
      Baseline, benchesDoc({{"other", 10}}), 1.5, 3.0);
  EXPECT_EQ(Empty.Compared, 0u);
  EXPECT_FALSE(Empty.passed());
}

TEST(ObsGate, ReportPrintsVerdictLine) {
  obs::JsonValue Baseline = benchesDoc({{"bm", 1000}});
  obs::GateReport R =
      obs::compareBenchmarks(Baseline, benchesDoc({{"bm", 1100}}), 1.5, 3.0);
  std::ostringstream OS;
  obs::printGateReport(OS, R);
  EXPECT_NE(OS.str().find("perf gate: PASS"), std::string::npos);
  EXPECT_NE(OS.str().find("1.10"), std::string::npos);
}

TEST_F(Obs, SummaryListsEveryMetricKind) {
  FGBS_COUNTER_ADD("t.sum_counter", 7);
  FGBS_GAUGE_SET("t.sum_gauge", 2.0);
  FGBS_HISTOGRAM_RECORD_NS("t.sum_hist", 1000000);
  std::ostringstream OS;
  obs::printSummary(OS, obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(OS.str().find("t.sum_counter"), std::string::npos);
  EXPECT_NE(OS.str().find("t.sum_gauge"), std::string::npos);
  EXPECT_NE(OS.str().find("t.sum_hist"), std::string::npos);
}
