//===- tests/service_test.cpp - Model snapshots + query service -----------===//

#include "fgbs/service/SelectionService.h"
#include "fgbs/service/Snapshot.h"

#include "fgbs/suites/Suites.h"
#include "fgbs/support/Crc32.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>

using namespace fgbs;
using namespace fgbs::service;

namespace {

//===----------------------------------------------------------------------===//
// Shared NR-trained model (built once; several suites reuse it)
//===----------------------------------------------------------------------===//

class ServiceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(makeNumericalRecipes());
    Db = new MeasurementDatabase(*TheSuite, makeNehalem(), paperTargets());
    Result = new PipelineResult(Pipeline(*Db, PipelineConfig()).run());
    Model = new ModelSnapshot(buildSnapshot(*Db, *Result));
  }
  static void TearDownTestSuite() {
    delete Model;
    delete Result;
    delete Db;
    delete TheSuite;
    Model = nullptr;
    Result = nullptr;
    Db = nullptr;
    TheSuite = nullptr;
  }

  static Suite *TheSuite;
  static MeasurementDatabase *Db;
  static PipelineResult *Result;
  static ModelSnapshot *Model;
};

Suite *ServiceTest::TheSuite = nullptr;
MeasurementDatabase *ServiceTest::Db = nullptr;
PipelineResult *ServiceTest::Result = nullptr;
ModelSnapshot *ServiceTest::Model = nullptr;

//===----------------------------------------------------------------------===//
// Byte-patching helpers for the corruption tests
//===----------------------------------------------------------------------===//

void patchU32(std::string &Bytes, std::size_t Offset, std::uint32_t V) {
  for (int B = 0; B < 4; ++B)
    Bytes[Offset + B] = static_cast<char>((V >> (8 * B)) & 0xffu);
}

void patchU64(std::string &Bytes, std::size_t Offset, std::uint64_t V) {
  for (int B = 0; B < 8; ++B)
    Bytes[Offset + B] = static_cast<char>((V >> (8 * B)) & 0xffu);
}

/// Rewrites the header CRC to match the (possibly modified) payload, so
/// tests can target post-checksum validation stages.
void fixChecksum(std::string &Bytes) {
  patchU32(Bytes, 24,
           crc32(std::string_view(Bytes).substr(kSnapshotHeaderBytes)));
}

} // namespace

//===----------------------------------------------------------------------===//
// Building and round-tripping
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, BuildSnapshotShape) {
  EXPECT_EQ(Model->SuiteName, "Numerical Recipes");
  EXPECT_EQ(Model->ReferenceName, "Nehalem");
  EXPECT_EQ(Model->numFeatures(), NumFeatures);
  EXPECT_EQ(Model->numSelectedFeatures(), maskCount(Model->Mask));
  EXPECT_EQ(Model->numClusters(), Result->Selection.FinalK);
  EXPECT_EQ(Model->numCodelets(), Result->Kept.size());
  EXPECT_EQ(Model->numTargets(), Db->targets().size());

  std::string Message;
  EXPECT_EQ(validateSnapshot(*Model, Message), SnapshotError::None) << Message;
}

TEST_F(ServiceTest, SaveLoadSaveIsByteIdentical) {
  std::string First = serializeSnapshot(*Model);
  SnapshotLoadResult Loaded = parseSnapshot(First);
  ASSERT_TRUE(Loaded) << Loaded.Message;
  std::string Second = serializeSnapshot(*Loaded.Snapshot);
  EXPECT_EQ(First, Second);

  // And once more through the loaded copy: the format is a fixed point.
  SnapshotLoadResult Again = parseSnapshot(Second);
  ASSERT_TRUE(Again);
  EXPECT_EQ(serializeSnapshot(*Again.Snapshot), Second);
}

TEST_F(ServiceTest, StreamAndFileRoundTrip) {
  std::stringstream SS;
  saveSnapshot(SS, *Model);
  SnapshotLoadResult Loaded = loadSnapshot(SS);
  ASSERT_TRUE(Loaded) << Loaded.Message;
  EXPECT_EQ(Loaded.Snapshot->SuiteName, Model->SuiteName);
  EXPECT_EQ(Loaded.Snapshot->Assignment, Model->Assignment);
  EXPECT_EQ(Loaded.Snapshot->Representatives, Model->Representatives);
  EXPECT_EQ(Loaded.Snapshot->CodeletNames, Model->CodeletNames);

  std::string Path = ::testing::TempDir() + "service_roundtrip.fgbs";
  ASSERT_TRUE(saveSnapshotFile(Path, *Model));
  SnapshotLoadResult FromFile = loadSnapshotFile(Path);
  ASSERT_TRUE(FromFile) << FromFile.Message;
  EXPECT_EQ(serializeSnapshot(*FromFile.Snapshot), serializeSnapshot(*Model));
}

TEST(SnapshotLoad, MissingFileIsIoError) {
  SnapshotLoadResult R = loadSnapshotFile("/nonexistent/model.fgbs");
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, SnapshotError::Io);
}

//===----------------------------------------------------------------------===//
// Corruption classes: every damage pattern yields the right typed error
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, TruncatedHeaderIsTruncated) {
  std::string Bytes = serializeSnapshot(*Model);
  for (std::size_t Keep : {std::size_t(0), std::size_t(4), std::size_t(8),
                           std::size_t(20), kSnapshotHeaderBytes - 1}) {
    SnapshotLoadResult R =
        parseSnapshot(std::string_view(Bytes).substr(0, Keep));
    EXPECT_FALSE(R);
    EXPECT_EQ(R.Error, SnapshotError::Truncated) << "kept " << Keep;
  }
}

TEST_F(ServiceTest, TruncatedPayloadIsTruncated) {
  std::string Bytes = serializeSnapshot(*Model);
  SnapshotLoadResult R =
      parseSnapshot(std::string_view(Bytes).substr(0, Bytes.size() - 1));
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, SnapshotError::Truncated);
}

TEST_F(ServiceTest, WrongMagicIsBadMagic) {
  std::string Bytes = serializeSnapshot(*Model);
  Bytes[0] = 'X';
  SnapshotLoadResult R = parseSnapshot(Bytes);
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, SnapshotError::BadMagic);

  // Magic wins even over truncation: a short non-snapshot file is
  // reported as not-a-snapshot, not as a truncated snapshot.
  SnapshotLoadResult Short = parseSnapshot("NOTMODEL");
  EXPECT_EQ(Short.Error, SnapshotError::BadMagic);
}

TEST_F(ServiceTest, FutureMajorVersionIsUnsupported) {
  std::string Bytes = serializeSnapshot(*Model);
  patchU32(Bytes, 8, kSnapshotVersionMajor + 1);
  SnapshotLoadResult R = parseSnapshot(Bytes);
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, SnapshotError::UnsupportedVersion);
  EXPECT_NE(R.Message.find(std::to_string(kSnapshotVersionMajor + 1)),
            std::string::npos);
}

TEST_F(ServiceTest, EveryFlippedPayloadByteIsDetected) {
  // Property-style sweep: flipping ANY single payload byte must fail the
  // checksum (CRC-32 detects all 1-byte errors) — corruption can never
  // slip through to the structural decoder.
  std::string Bytes = serializeSnapshot(*Model);
  for (std::size_t I = kSnapshotHeaderBytes; I < Bytes.size(); I += 97) {
    std::string Damaged = Bytes;
    Damaged[I] = static_cast<char>(Damaged[I] ^ 0x40);
    SnapshotLoadResult R = parseSnapshot(Damaged);
    EXPECT_FALSE(R);
    EXPECT_EQ(R.Error, SnapshotError::ChecksumMismatch) << "byte " << I;
  }
}

TEST_F(ServiceTest, TrailingGarbageIsMalformed) {
  std::string Bytes = serializeSnapshot(*Model);
  SnapshotLoadResult R = parseSnapshot(Bytes + "junk");
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, SnapshotError::Malformed);
}

TEST_F(ServiceTest, FutureMinorVersionSkipsUnknownFields) {
  // A v1.(N+1) writer appends fields after ours; this reader must load
  // the prefix it understands and ignore the rest.
  std::string Bytes = serializeSnapshot(*Model);
  Bytes.append("\x01\x02\x03\x04", 4);
  patchU32(Bytes, 12, kSnapshotVersionMinor + 1);
  patchU64(Bytes, 16, Bytes.size() - kSnapshotHeaderBytes);
  fixChecksum(Bytes);
  SnapshotLoadResult R = parseSnapshot(Bytes);
  ASSERT_TRUE(R) << R.Message;
  EXPECT_EQ(R.Snapshot->Assignment, Model->Assignment);

  // The same trailing bytes on our OWN minor version are structural
  // damage, not extensions.
  std::string OwnMinor = serializeSnapshot(*Model);
  OwnMinor.append("\x01\x02\x03\x04", 4);
  patchU64(OwnMinor, 16, OwnMinor.size() - kSnapshotHeaderBytes);
  fixChecksum(OwnMinor);
  SnapshotLoadResult Rejected = parseSnapshot(OwnMinor);
  EXPECT_FALSE(Rejected);
  EXPECT_EQ(Rejected.Error, SnapshotError::Malformed);
}

TEST_F(ServiceTest, NaNReferenceTimeIsInvalidValue) {
  // ReferenceSeconds sit N*8 bytes before the target block; patch the
  // first one to NaN and re-checksum so validation (not the CRC) trips.
  ModelSnapshot Damaged = *Model;
  Damaged.ReferenceSeconds[0] = std::nan("");
  std::string Bytes = serializeSnapshot(Damaged);
  fixChecksum(Bytes);
  SnapshotLoadResult R = parseSnapshot(Bytes);
  EXPECT_FALSE(R);
  EXPECT_EQ(R.Error, SnapshotError::InvalidValue);
}

//===----------------------------------------------------------------------===//
// validateSnapshot: dimension and range damage
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, ValidateCatchesStructuralDamage) {
  std::string Message;

  ModelSnapshot S = *Model;
  S.Centroids[0].pop_back();
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  S = *Model;
  S.Assignment[0] = static_cast<int>(S.numClusters());
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  S = *Model;
  S.Representatives[0] = static_cast<std::uint32_t>(S.numCodelets());
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  // A representative must belong to the cluster it represents.
  S = *Model;
  ASSERT_GE(S.numClusters(), 2u);
  std::swap(S.Representatives[0], S.Representatives[1]);
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  S = *Model;
  S.Norm.Mean.pop_back();
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  S = *Model;
  S.Mask.assign(S.Mask.size(), false);
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  S = *Model;
  S.Targets[0].RepresentativeSeconds.pop_back();
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::Malformed);

  S = *Model;
  S.Norm.Std[0] = -1.0;
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::InvalidValue);

  S = *Model;
  S.Targets[0].RepresentativeSeconds[0] = 0.0;
  EXPECT_EQ(validateSnapshot(S, Message), SnapshotError::InvalidValue);
}

TEST(SnapshotErrors, EveryErrorHasAStableName) {
  EXPECT_STREQ(snapshotErrorName(SnapshotError::None), "none");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::Io), "io");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::Truncated), "truncated");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::BadMagic), "bad_magic");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::UnsupportedVersion),
               "unsupported_version");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::ChecksumMismatch),
               "checksum_mismatch");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::Malformed), "malformed");
  EXPECT_STREQ(snapshotErrorName(SnapshotError::InvalidValue),
               "invalid_value");
}

//===----------------------------------------------------------------------===//
// The query engine agrees with the in-process pipeline
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, ClassifyReproducesTrainingAssignment) {
  SelectionService Svc(*Model);
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    ClassifyResult C =
        Svc.classify(Db->profile(Result->Kept[I]).Features);
    EXPECT_EQ(static_cast<int>(C.Cluster), Result->Selection.Assignment[I])
        << "codelet " << Model->CodeletNames[I];
  }
}

TEST_F(ServiceTest, PredictMatchesPipelineWithin1e9) {
  SelectionService Svc(*Model);
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    QueryRequest Q;
    Q.Features = Db->profile(Result->Kept[I]).Features;
    Q.ReferenceSeconds = Db->profile(Result->Kept[I]).InApp.MeasuredSeconds;
    PredictResult P = Svc.predictTimes(Q);
    ASSERT_EQ(P.PredictedSeconds.size(), Result->Targets.size());
    for (std::size_t T = 0; T < Result->Targets.size(); ++T) {
      double Expected = Result->Targets[T].Predicted[I];
      EXPECT_NEAR(P.PredictedSeconds[T], Expected,
                  1e-9 * std::max(1.0, std::fabs(Expected)))
          << Model->CodeletNames[I] << " on "
          << Result->Targets[T].MachineName;
    }
  }
}

TEST_F(ServiceTest, NormalizeMatchesTrainingPoints) {
  SelectionService Svc(*Model);
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    std::vector<double> Point =
        Svc.normalize(Db->profile(Result->Kept[I]).Features);
    ASSERT_EQ(Point.size(), Result->Points[I].size());
    for (std::size_t D = 0; D < Point.size(); ++D)
      EXPECT_DOUBLE_EQ(Point[D], Result->Points[I][D]);
  }
}

TEST_F(ServiceTest, RankMachinesOrdersByGeomeanSpeedup) {
  SelectionService Svc(*Model);
  std::vector<QueryRequest> Queries;
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    QueryRequest Q;
    Q.Features = Db->profile(Result->Kept[I]).Features;
    Q.ReferenceSeconds = Db->profile(Result->Kept[I]).InApp.MeasuredSeconds;
    Queries.push_back(std::move(Q));
  }
  std::vector<MachineRank> Ranking = Svc.rankMachines(Queries);
  ASSERT_EQ(Ranking.size(), Model->numTargets());
  for (std::size_t I = 1; I < Ranking.size(); ++I)
    EXPECT_GE(Ranking[I - 1].GeomeanSpeedup, Ranking[I].GeomeanSpeedup);

  // Every ranked machine is a snapshot target, each exactly once.
  std::set<std::string> Names;
  for (const MachineRank &R : Ranking)
    Names.insert(R.MachineName);
  EXPECT_EQ(Names.size(), Model->numTargets());
}

TEST_F(ServiceTest, BatchedPredictionIsPositionallyStable) {
  SelectionService Svc(*Model);
  std::vector<QueryRequest> Queries;
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    QueryRequest Q;
    Q.Features = Db->profile(Result->Kept[I]).Features;
    Q.ReferenceSeconds = Db->profile(Result->Kept[I]).InApp.MeasuredSeconds;
    Queries.push_back(std::move(Q));
  }

  std::vector<PredictResult> Serial = Svc.predictBatch(Queries);
  ThreadPool Pool(4);
  std::vector<PredictResult> Parallel = Svc.predictBatch(Queries, &Pool);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (std::size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Classified.Cluster, Parallel[I].Classified.Cluster);
    EXPECT_EQ(Serial[I].PredictedSeconds, Parallel[I].PredictedSeconds);
  }
}

TEST_F(ServiceTest, ConcurrentReadersAgree) {
  // The acceptance bar: >= 4 threads hammering one immutable service
  // must all see identical answers (and no data race under sanitizers).
  SelectionService Svc(*Model);
  std::vector<PredictResult> Expected;
  for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
    QueryRequest Q;
    Q.Features = Db->profile(Result->Kept[I]).Features;
    Q.ReferenceSeconds = Db->profile(Result->Kept[I]).InApp.MeasuredSeconds;
    Expected.push_back(Svc.predictTimes(Q));
  }

  constexpr unsigned NumThreads = 6;
  constexpr unsigned Rounds = 25;
  std::vector<unsigned> Mismatches(NumThreads, 0);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned Round = 0; Round < Rounds; ++Round) {
        for (std::size_t I = 0; I < Result->Kept.size(); ++I) {
          QueryRequest Q;
          Q.Features = Db->profile(Result->Kept[I]).Features;
          Q.ReferenceSeconds =
              Db->profile(Result->Kept[I]).InApp.MeasuredSeconds;
          PredictResult P = Svc.predictTimes(Q);
          if (P.Classified.Cluster != Expected[I].Classified.Cluster ||
              P.PredictedSeconds != Expected[I].PredictedSeconds)
            ++Mismatches[T];
        }
      }
    });
  }
  for (std::thread &Thread : Threads)
    Thread.join();
  for (unsigned T = 0; T < NumThreads; ++T)
    EXPECT_EQ(Mismatches[T], 0u) << "thread " << T;
}
