//===- tests/extract_test.cpp - Microbenchmark extraction and selection ---===//

#include "fgbs/extract/Extraction.h"

#include "fgbs/dsl/Builder.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

Codelet simpleKernel(const char *Name, std::uint64_t Elems) {
  CodeletBuilder B(Name, "t");
  unsigned A = B.array("a", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 mul(B.ld(A, StrideClass::Unit), constant(Precision::DP))));
  return B.take();
}

/// Clusters three points tightly around each of two centers.
FeatureTable twoClusterPoints() {
  return {{0.0}, {0.1}, {-0.1}, {10.0}, {10.1}, {9.9}};
}

Clustering twoClusters() {
  Clustering C;
  C.K = 2;
  C.Assignment = {0, 0, 0, 1, 1, 1};
  return C;
}

} // namespace

TEST(Extraction, TimingPolicyMinimumInvocations) {
  // A long codelet still runs at least 10 invocations.
  Codelet C = simpleKernel("long", 8 << 20);
  StandaloneMeasurement M = measureStandalone(C, makeNehalem());
  EXPECT_EQ(M.Invocations, 10u);
  EXPECT_NEAR(M.TotalBenchmarkSeconds, 10.0 * M.TrueSeconds, 1e-12);
}

TEST(Extraction, TimingPolicyMinimumRuntime)
{
  // A ~60 us codelet needs ~17 invocations to fill 1 ms.
  Codelet C = simpleKernel("short", 20000);
  StandaloneMeasurement M = measureStandalone(C, makeNehalem());
  EXPECT_GT(M.Invocations, 10u);
  EXPECT_GE(static_cast<double>(M.Invocations) * M.TrueSeconds, 1e-3);
}

TEST(Extraction, CustomPolicy) {
  Codelet C = simpleKernel("policy", 1 << 20);
  TimingPolicy P;
  P.MinInvocations = 50;
  StandaloneMeasurement M = measureStandalone(C, makeNehalem(), P);
  EXPECT_GE(M.Invocations, 50u);
}

TEST(Extraction, MedianTracksTrueTime) {
  Codelet C = simpleKernel("median", 1 << 21);
  StandaloneMeasurement M = measureStandalone(C, makeNehalem());
  EXPECT_NEAR(M.MedianSeconds / M.TrueSeconds, 1.0, 0.1);
}

TEST(Extraction, WellBehavedThreshold) {
  StandaloneMeasurement M;
  M.MedianSeconds = 1.05;
  EXPECT_TRUE(isWellBehaved(M, 1.0));
  M.MedianSeconds = 1.09;
  EXPECT_TRUE(isWellBehaved(M, 1.0));
  M.MedianSeconds = 1.11;
  EXPECT_FALSE(isWellBehaved(M, 1.0));
  M.MedianSeconds = 0.85;
  EXPECT_FALSE(isWellBehaved(M, 1.0));
  // Custom threshold.
  EXPECT_TRUE(isWellBehaved(M, 1.0, 0.2));
}

TEST(Extraction, StandaloneUsesFirstInvocationDataset) {
  CodeletBuilder B("ctx", "t");
  unsigned A = B.array("a", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 mul(B.ld(A, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(10, 1.0);
  B.invocations(100, 0.1); // Most invocations are 10x smaller.
  Codelet C = B.take();
  StandaloneMeasurement M = measureStandalone(C, makeNehalem());
  // The standalone time matches the FIRST (large) dataset, far from the
  // in-app average: the first ill-behaved category.
  Codelet FullScale = simpleKernel("ctx_ref", 1 << 20);
  StandaloneMeasurement Ref = measureStandalone(FullScale, makeNehalem());
  EXPECT_NEAR(M.TrueSeconds / Ref.TrueSeconds, 1.0, 0.05);
}

TEST(Selection, MedoidChosenWhenAllWellBehaved) {
  SelectionResult R = selectRepresentatives(
      twoClusterPoints(), twoClusters(), [](std::size_t) { return true; });
  EXPECT_EQ(R.FinalK, 2u);
  ASSERT_EQ(R.Representatives.size(), 2u);
  // Medoids: point 0 (centroid 0.0) and point 3 (centroid 10.0).
  EXPECT_EQ(R.Representatives[0], 0u);
  EXPECT_EQ(R.Representatives[1], 3u);
  EXPECT_TRUE(R.IllBehaved.empty());
}

TEST(Selection, FirstMemberWhenMedoidDisabled) {
  FeatureTable Points = {{0.1}, {0.0}, {10.0}, {10.1}};
  Clustering C;
  C.K = 2;
  C.Assignment = {0, 0, 1, 1};
  SelectionResult R = selectRepresentatives(
      Points, C, [](std::size_t) { return true; }, /*PreferMedoid=*/false);
  EXPECT_EQ(R.Representatives[0], 0u); // Not the medoid (index 1).
}

TEST(Selection, IllBehavedMedoidSkipped) {
  SelectionResult R = selectRepresentatives(
      twoClusterPoints(), twoClusters(),
      [](std::size_t I) { return I != 0; }); // Medoid of cluster 0 is bad.
  EXPECT_EQ(R.FinalK, 2u);
  // Next-closest member picked instead (0.1 or -0.1 -> index 1).
  EXPECT_EQ(R.Representatives[0], 1u);
  EXPECT_EQ(R.IllBehaved, (std::vector<std::size_t>{0}));
}

TEST(Selection, ClusterDestroyedWhenAllIllBehaved) {
  SelectionResult R = selectRepresentatives(
      twoClusterPoints(), twoClusters(),
      [](std::size_t I) { return I >= 3; }); // Cluster 0 entirely bad.
  EXPECT_EQ(R.FinalK, 1u);
  ASSERT_EQ(R.Representatives.size(), 1u);
  EXPECT_EQ(R.Representatives[0], 3u);
  // Orphans joined the surviving cluster.
  for (int Label : R.Assignment)
    EXPECT_EQ(Label, 0);
  EXPECT_EQ(R.IllBehaved.size(), 3u);
}

TEST(Selection, AllClustersDestroyed) {
  SelectionResult R = selectRepresentatives(
      twoClusterPoints(), twoClusters(), [](std::size_t) { return false; });
  EXPECT_EQ(R.FinalK, 0u);
  EXPECT_TRUE(R.Representatives.empty());
  EXPECT_TRUE(R.Assignment.empty());
  EXPECT_EQ(R.IllBehaved.size(), 6u);
}

TEST(Selection, RepresentativeBelongsToItsCluster) {
  FeatureTable Points = {{0.0}, {1.0}, {2.0}, {10.0}, {11.0}, {12.0}};
  Clustering C;
  C.K = 2;
  C.Assignment = {0, 0, 0, 1, 1, 1};
  SelectionResult R = selectRepresentatives(Points, C,
                                            [](std::size_t) { return true; });
  for (unsigned K = 0; K < R.FinalK; ++K)
    EXPECT_EQ(R.Assignment[R.Representatives[K]], static_cast<int>(K));
}

TEST(Extraction, ModeledExtractionCost) {
  // 18 representatives cost 380 minutes in the paper.
  EXPECT_NEAR(18.0 * ExtractionMinutesPerCodelet, 380.0, 1e-9);
}
