//===- tests/cache_backend_conformance_test.cpp - all backends ------------===//
//
// Instantiates the CacheBackend conformance battery against every
// implementation in the tree: the local directory, the in-memory
// reference, the wire-protocol client over a loopback fgbs_cached
// server, and the tiered local+remote composition.
//
//===----------------------------------------------------------------------===//

#include "cache_backend_conformance.h"

#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/core/TieredCacheBackend.h"
#include "fgbs/net/CacheServer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>

#include <unistd.h>

using namespace fgbs;
using namespace fgbs::conformance;

namespace {

/// A scratch directory unique to this process and harness instance.
struct TempDir {
  std::filesystem::path Path;
  explicit TempDir(const std::string &Tag) {
    static std::atomic<unsigned> Serial{0};
    Path = std::filesystem::temp_directory_path() /
           ("fgbs_conformance_" + Tag + "_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(Serial.fetch_add(1)));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

struct LocalDirHarness {
  TempDir Dir{"local"};
  LocalDirBackend Backend{(Dir.Path / "cache").string()};
  CacheBackend &backend() { return Backend; }
};

struct InMemoryHarness {
  InMemoryBackend Backend;
  CacheBackend &backend() { return Backend; }
};

/// A loopback fgbs_cached instance plus a client pointed at it.
struct RemoteHarness {
  TempDir Dir{"remote"};
  net::CacheServer Server{[this] {
    net::CacheServerConfig Config;
    Config.Root = (Dir.Path / "server").string();
    Config.Shards = 3;
    Config.Threads = 2;
    Config.BindAddr = "127.0.0.1";
    return Config;
  }()};
  std::unique_ptr<RemoteCacheBackend> Client;

  RemoteHarness() {
    std::string Error;
    if (!Server.start(&Error))
      ADD_FAILURE() << "cannot start loopback cache server: " << Error;
    RemoteCacheConfig Config;
    Config.Host = "127.0.0.1";
    Config.Port = Server.port();
    Client = std::make_unique<RemoteCacheBackend>(std::move(Config));
  }

  CacheBackend &backend() { return *Client; }
};

struct TieredHarness {
  TempDir Dir{"tiered"};
  net::CacheServer Server{[this] {
    net::CacheServerConfig Config;
    Config.Root = (Dir.Path / "server").string();
    Config.Shards = 2;
    Config.Threads = 2;
    Config.BindAddr = "127.0.0.1";
    return Config;
  }()};
  std::unique_ptr<TieredCacheBackend> Tiered;

  TieredHarness() {
    std::string Error;
    if (!Server.start(&Error))
      ADD_FAILURE() << "cannot start loopback cache server: " << Error;
    RemoteCacheConfig Config;
    Config.Host = "127.0.0.1";
    Config.Port = Server.port();
    Tiered = std::make_unique<TieredCacheBackend>(
        std::make_unique<LocalDirBackend>((Dir.Path / "local").string()),
        std::make_unique<RemoteCacheBackend>(std::move(Config)));
  }

  CacheBackend &backend() { return *Tiered; }
};

} // namespace

INSTANTIATE_TYPED_TEST_SUITE_P(LocalDir, CacheBackendConformance,
                               LocalDirHarness);
INSTANTIATE_TYPED_TEST_SUITE_P(InMemory, CacheBackendConformance,
                               InMemoryHarness);
INSTANTIATE_TYPED_TEST_SUITE_P(Remote, CacheBackendConformance,
                               RemoteHarness);
INSTANTIATE_TYPED_TEST_SUITE_P(Tiered, CacheBackendConformance,
                               TieredHarness);
