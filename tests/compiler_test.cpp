//===- tests/compiler_test.cpp - Lowering and vectorization ---------------===//

#include "fgbs/compiler/Compiler.h"
#include "fgbs/dsl/Builder.h"
#include "fgbs/sim/Executor.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

/// A single-statement codelet: store(a[i]) = x[i] * c with the given
/// load stride.
Codelet strideCodelet(StrideClass Stride, Precision Prec = Precision::DP) {
  CodeletBuilder B("stride", "t");
  unsigned A = B.array("a", Prec, 4096);
  unsigned X = B.array("x", Prec, 4096);
  B.loops(4096);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 mul(B.ld(X, Stride), constant(Prec))));
  return B.take();
}

Codelet reductionCodelet(Precision Prec = Precision::DP) {
  CodeletBuilder B("red", "t");
  unsigned X = B.array("x", Prec, 4096);
  B.loops(4096);
  B.stmt(reduce(BinOp::Add, B.ld(X, StrideClass::Unit)));
  return B.take();
}

Codelet recurrenceCodelet() {
  CodeletBuilder B("rec", "t");
  unsigned X = B.array("x", Precision::DP, 4096);
  unsigned Y = B.array("y", Precision::DP, 4096);
  B.loops(4096);
  B.stmt(recurrence(B.at(X, StrideClass::Unit),
                    add(mul(B.ld(Y, StrideClass::Unit),
                            constant(Precision::DP)),
                        constant(Precision::DP))));
  return B.take();
}

} // namespace

struct StrideVectorizationCase {
  StrideClass Stride;
  bool ExpectVector;
};

class VectorizationStrides
    : public ::testing::TestWithParam<StrideVectorizationCase> {};

TEST_P(VectorizationStrides, LegalityFollowsStrideClass) {
  const StrideVectorizationCase &Case = GetParam();
  Codelet C = strideCodelet(Case.Stride);
  Machine M = makeNehalem();
  VectorizationDecision D = decideVectorization(
      C, C.Body[0], M, CompilationContext::InApplication);
  EXPECT_EQ(D.Vectorized, Case.ExpectVector)
      << strideClassName(Case.Stride) << ": " << D.Reason;
  if (D.Vectorized) {
    EXPECT_EQ(D.VectorFactor, 2u); // 128-bit DP.
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrides, VectorizationStrides,
    ::testing::Values(StrideVectorizationCase{StrideClass::Zero, true},
                      StrideVectorizationCase{StrideClass::Unit, true},
                      StrideVectorizationCase{StrideClass::Stencil, true},
                      StrideVectorizationCase{StrideClass::NegUnit, false},
                      StrideVectorizationCase{StrideClass::Small, false},
                      StrideVectorizationCase{StrideClass::Lda, false}));

TEST(Compiler, SpVectorFactorIsFour) {
  Codelet C = strideCodelet(StrideClass::Unit, Precision::SP);
  VectorizationDecision D = decideVectorization(
      C, C.Body[0], makeNehalem(), CompilationContext::InApplication);
  EXPECT_TRUE(D.Vectorized);
  EXPECT_EQ(D.VectorFactor, 4u); // 128-bit SP.
}

TEST(Compiler, RecurrenceNeverVectorizes) {
  Codelet C = recurrenceCodelet();
  VectorizationDecision D = decideVectorization(
      C, C.Body[0], makeNehalem(), CompilationContext::InApplication);
  EXPECT_FALSE(D.Vectorized);
  EXPECT_STREQ(D.Reason, "loop-carried recurrence");
}

TEST(Compiler, ReductionsVectorize) {
  Codelet C = reductionCodelet();
  VectorizationDecision D = decideVectorization(
      C, C.Body[0], makeNehalem(), CompilationContext::InApplication);
  EXPECT_TRUE(D.Vectorized);
}

TEST(Compiler, ContextSensitiveLosesVectorizationStandalone) {
  Codelet C = strideCodelet(StrideClass::Unit);
  C.Traits.CompilationContextSensitive = true;
  Machine M = makeNehalem();
  EXPECT_TRUE(decideVectorization(C, C.Body[0], M,
                                  CompilationContext::InApplication)
                  .Vectorized);
  EXPECT_FALSE(decideVectorization(C, C.Body[0], M,
                                   CompilationContext::Standalone)
                   .Vectorized);
}

TEST(Compiler, ContextInsensitiveUnchangedStandalone) {
  Codelet C = strideCodelet(StrideClass::Unit);
  BinaryLoop InApp = compile(C, makeNehalem(),
                             CompilationContext::InApplication);
  BinaryLoop Alone = compile(C, makeNehalem(), CompilationContext::Standalone);
  EXPECT_EQ(InApp.Body.size(), Alone.Body.size());
  EXPECT_EQ(InApp.vectorizedPercent(), Alone.vectorizedPercent());
}

TEST(Compiler, ElementsPerIterationVectorized) {
  Codelet C = strideCodelet(StrideClass::Unit);
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  // Unroll 4 x VF 2.
  EXPECT_EQ(Loop.UnrollFactor, 4u);
  EXPECT_EQ(Loop.ElementsPerIter, 8u);
  EXPECT_TRUE(Loop.anyVector());
  EXPECT_EQ(vectorizationTag(Loop), "V");
  EXPECT_DOUBLE_EQ(Loop.vectorizedPercent(), 100.0);
}

TEST(Compiler, ElementsPerIterationScalar) {
  Codelet C = strideCodelet(StrideClass::Lda);
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_EQ(Loop.ElementsPerIter, 4u); // Unroll 4 x VF 1.
  EXPECT_FALSE(Loop.anyVector());
  EXPECT_EQ(vectorizationTag(Loop), "S");
  EXPECT_DOUBLE_EQ(Loop.vectorizedPercent(), 0.0);
}

TEST(Compiler, MixedStatementsGiveVPlusS) {
  CodeletBuilder B("mix", "t");
  unsigned A = B.array("a", Precision::DP, 4096);
  unsigned X = B.array("x", Precision::DP, 4096);
  B.loops(4096);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 mul(B.ld(X, StrideClass::Unit), constant(Precision::DP))));
  B.stmt(storeTo(B.at(A, StrideClass::Lda),
                 mul(B.ld(X, StrideClass::Lda), constant(Precision::DP))));
  Codelet C = B.take();
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_EQ(vectorizationTag(Loop), "V + S");
  EXPECT_GT(Loop.vectorizedPercent(), 0.0);
  EXPECT_LT(Loop.vectorizedPercent(), 100.0);
}

TEST(Compiler, MixedPrecisionEmitsConversions) {
  CodeletBuilder B("mp", "t");
  unsigned A = B.array("a", Precision::SP, 4096);
  unsigned X = B.array("x", Precision::DP, 4096);
  B.loops(4096);
  B.stmt(reduce(BinOp::Add,
                mul(B.ld(A, StrideClass::Unit), B.ld(X, StrideClass::Unit))));
  Codelet C = B.take();
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_GT(Loop.countKind(OpKind::MoveReg), 0u);
}

TEST(Compiler, ReductionChainParallelism) {
  Codelet C = reductionCodelet();
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  // Four unrolled copies = four private accumulators.
  EXPECT_EQ(Loop.ChainParallelism, 4u);
  EXPECT_EQ(Loop.CritChainOps.size(), 4u);
}

TEST(Compiler, RecurrenceChainSerial) {
  Codelet C = recurrenceCodelet();
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_EQ(Loop.ChainParallelism, 1u);
  // Each unrolled element contributes chain steps (load + mul + add).
  EXPECT_GE(Loop.CritChainOps.size(), 8u);
}

TEST(Compiler, LoopOverheadPresent) {
  Codelet C = strideCodelet(StrideClass::Unit);
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_EQ(Loop.countKind(OpKind::Branch), 1u);
  EXPECT_EQ(Loop.countKind(OpKind::Compare), 1u);
}

TEST(Compiler, ClassStatsConsistent) {
  Codelet C = strideCodelet(StrideClass::Unit);
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  unsigned Total = 0;
  for (const OpClassStats &S : Loop.ClassStats)
    Total += S.total();
  EXPECT_EQ(Total, Loop.Body.size());
}

TEST(Compiler, FlopsPerIter) {
  Codelet C = strideCodelet(StrideClass::Unit); // 1 mul per element.
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_EQ(Loop.flopsPerIter(), Loop.ElementsPerIter);
}

TEST(CompilerOptionsTest, NoVecForcesScalar) {
  Codelet C = strideCodelet(StrideClass::Unit);
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication,
                            CompilerOptions::noVec());
  EXPECT_FALSE(Loop.anyVector());
  EXPECT_EQ(Loop.ElementsPerIter, 4u); // Unroll only.
}

TEST(CompilerOptionsTest, StrictFpKeepsFpReductionsScalarAndSerial) {
  Codelet C = reductionCodelet();
  BinaryLoop Strict = compile(C, makeNehalem(),
                              CompilationContext::InApplication,
                              CompilerOptions::strictFp());
  EXPECT_FALSE(Strict.anyVector());
  EXPECT_EQ(Strict.ChainParallelism, 1u);
  BinaryLoop Fast = compile(C, makeNehalem(),
                            CompilationContext::InApplication,
                            CompilerOptions::o3());
  EXPECT_GT(Fast.ChainParallelism, 1u);
}

TEST(CompilerOptionsTest, StrictFpAllowsIntegerReductions) {
  Codelet C = reductionCodelet(Precision::I32);
  VectorizationDecision D = decideVectorization(
      C, C.Body[0], makeNehalem(), CompilationContext::InApplication,
      CompilerOptions::strictFp());
  EXPECT_TRUE(D.Vectorized);
}

TEST(CompilerOptionsTest, UnrollFactorHonoredAndClamped) {
  Codelet C = strideCodelet(StrideClass::Unit);
  CompilerOptions Options;
  Options.UnrollFactor = 2;
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication, Options);
  EXPECT_EQ(Loop.UnrollFactor, 2u);
  EXPECT_EQ(Loop.ElementsPerIter, 4u); // 2 x VF 2.
  Options.UnrollFactor = 100;
  BinaryLoop Clamped = compile(C, makeNehalem(),
                               CompilationContext::InApplication, Options);
  EXPECT_EQ(Clamped.UnrollFactor, 8u);
}

TEST(CompilerOptionsTest, Names) {
  EXPECT_EQ(CompilerOptions::o3().name(), "-O3");
  EXPECT_EQ(CompilerOptions::noVec().name(), "-O3 -no-vec");
  EXPECT_EQ(CompilerOptions::strictFp().name(), "-O3 -fp-model=strict");
  EXPECT_EQ(CompilerOptions::noUnroll().name(), "-O3 -unroll=1");
}

TEST(CompilerOptionsTest, NoVecSlowerOnVectorizableKernel) {
  Codelet C = strideCodelet(StrideClass::Unit);
  // Small footprint: compute bound, so vectorization matters.
  C.Arrays[0].NumElements = C.Arrays[1].NumElements = 2048;
  Machine M = makeNehalem();
  ExecutionRequest Fast;
  ExecutionRequest Slow;
  Slow.Options = CompilerOptions::noVec();
  EXPECT_GT(execute(C, M, Slow).TrueSeconds,
            execute(C, M, Fast).TrueSeconds);
}

TEST(Compiler, CodeBytesAndRegisters) {
  Codelet C = strideCodelet(StrideClass::Unit);
  BinaryLoop Loop = compile(C, makeNehalem(),
                            CompilationContext::InApplication);
  EXPECT_EQ(Loop.CodeBytes, Loop.Body.size() * 5);
  EXPECT_GT(Loop.NumRegisters, 0u);
  EXPECT_LE(Loop.NumRegisters, makeNehalem().NumFpRegisters);
}
