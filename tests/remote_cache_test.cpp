//===- tests/remote_cache_test.cpp - the networked cache tier -------------===//
//
// The remote measurement-cache tier end to end: shard addressing, the
// fgbs_cached server's opcode surface over a real loopback socket,
// fleet-wide writer leases, tiered read-through/write-back semantics,
// typed degradation when the server dies, and the headline guarantee —
// a second host with a cold local directory trains with zero simulation
// and byte-identical results.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/RemoteCacheBackend.h"
#include "fgbs/core/TieredCacheBackend.h"
#include "fgbs/net/CacheServer.h"
#include "fgbs/obs/Json.h"
#include "fgbs/obs/Metrics.h"
#include "fgbs/service/Snapshot.h"
#include "fgbs/suites/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

using namespace fgbs;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag) {
    static std::atomic<unsigned> Serial{0};
    Path = fs::temp_directory_path() /
           ("fgbs_remote_cache_" + Tag + "_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(Serial.fetch_add(1)));
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
};

net::CacheServerConfig loopbackConfig(const TempDir &Dir, unsigned Shards) {
  net::CacheServerConfig Config;
  Config.Root = (Dir.Path / "server").string();
  Config.Shards = Shards;
  Config.Threads = 2;
  Config.BindAddr = "127.0.0.1";
  return Config;
}

RemoteCacheConfig clientConfig(const net::CacheServer &Server) {
  RemoteCacheConfig Config;
  Config.Host = "127.0.0.1";
  Config.Port = Server.port();
  return Config;
}

/// A client whose server is gone: one attempt, tight deadlines, so
/// degradation paths run in milliseconds.
RemoteCacheConfig deadServerConfig() {
  RemoteCacheConfig Config;
  Config.Host = "127.0.0.1";
  Config.Port = 1;
  Config.ConnectTimeoutMs = 200;
  Config.RequestTimeoutMs = 200;
  Config.MaxAttempts = 1;
  return Config;
}

SyntheticConfig tinyConfig() {
  SyntheticConfig Cfg;
  Cfg.NumApplications = 1;
  Cfg.CodeletsPerApp = 3;
  Cfg.MinFootprintBytes = 64 << 10;
  Cfg.MaxFootprintBytes = 1 << 20;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Shard addressing and name validation
//===----------------------------------------------------------------------===//

TEST(ShardAddressing, CanonicalNamesRouteOnHashPrefix) {
  // The leading 8 hex digits choose the shard, so the key itself names
  // its home and shard counts need only agree per-server.
  EXPECT_EQ(net::CacheServer::shardForName("fgbs-meas-0000000300000000.v1", 4),
            3u);
  EXPECT_EQ(net::CacheServer::shardForName("fgbs-meas-0000000500000000.v1", 4),
            1u);
  EXPECT_EQ(net::CacheServer::shardForName("fgbs-meas-deadbeef00000000.v1", 1),
            0u);
}

TEST(ShardAddressing, StableAcrossCalls) {
  for (unsigned Shards : {1u, 2u, 4u, 7u}) {
    unsigned First =
        net::CacheServer::shardForName("fgbs.meas.index.v1", Shards);
    EXPECT_LT(First, Shards);
    EXPECT_EQ(First,
              net::CacheServer::shardForName("fgbs.meas.index.v1", Shards));
  }
}

TEST(ShardAddressing, EntryNameValidation) {
  EXPECT_TRUE(net::isValidEntryName("fgbs-meas-0123456789abcdef.v1"));
  EXPECT_TRUE(net::isValidEntryName("fgbs.meas.index.v1"));
  EXPECT_FALSE(net::isValidEntryName(""));
  EXPECT_FALSE(net::isValidEntryName("."));
  EXPECT_FALSE(net::isValidEntryName(".."));
  EXPECT_FALSE(net::isValidEntryName("../escape"));
  EXPECT_FALSE(net::isValidEntryName("dir/inside"));
  EXPECT_FALSE(net::isValidEntryName("back\\slash"));
  EXPECT_FALSE(net::isValidEntryName(std::string("nul\0byte", 8)));
  EXPECT_FALSE(net::isValidEntryName(std::string(256, 'a')));
}

//===----------------------------------------------------------------------===//
// Server surface over a live loopback connection
//===----------------------------------------------------------------------===//

TEST(CacheServer, EntriesSpreadAcrossShardDirectories) {
  TempDir Dir("shards");
  net::CacheServer Server(loopbackConfig(Dir, 4));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Client(clientConfig(Server));

  // Names whose leading hash digits hit each of the four shards.
  for (unsigned I = 0; I < 4; ++I) {
    char Name[64];
    std::snprintf(Name, sizeof(Name), "fgbs-meas-%08x00000000.v1", I);
    ASSERT_TRUE(Client.put(Name, "shard blob"));
    fs::path ShardFile =
        fs::path(Server.root()) /
        ("shard-0" + std::to_string(I)) / Name;
    EXPECT_TRUE(fs::exists(ShardFile))
        << Name << " should land in shard " << I;
  }

  // Scan merges all shards back into one listing.
  EXPECT_EQ(Client.scan("fgbs-meas-", ".v1").size(), 4u);
}

TEST(CacheServer, TraversalNamesRejected) {
  TempDir Dir("traversal");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Client(clientConfig(Server));
  EXPECT_FALSE(Client.put("../escape.v1", "evil"));
  EXPECT_FALSE(Client.exists("../escape.v1"));
  EXPECT_FALSE(fs::exists(Dir.Path / "escape.v1"));
}

TEST(CacheServer, WirePruneEvictsOverBudget) {
  TempDir Dir("prune");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Client(clientConfig(Server));

  const std::string Blob(10000, 'p');
  ASSERT_TRUE(Client.put("fgbs-meas-0000000000000001.v1", Blob));
  ASSERT_TRUE(Client.put("fgbs-meas-0000000100000002.v1", Blob));
  ASSERT_TRUE(Client.put("fgbs-meas-0000000200000003.v1", Blob));

  std::uint64_t Entries = 0, Removed = 0;
  ASSERT_TRUE(Client.pruneRemote(/*MaxBytes=*/1, /*MaxAgeSeconds=*/0,
                                 &Entries, &Removed));
  EXPECT_EQ(Entries, 3u);
  EXPECT_EQ(Removed, 3u);
  EXPECT_TRUE(Client.scan("fgbs-meas-", ".v1").empty());
}

TEST(CacheServer, SurvivesDamagedFramesFromOtherClients) {
  TempDir Dir("damage");
  net::CacheServer Server(loopbackConfig(Dir, 1));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // A raw client sends garbage; the server answers an error and drops
  // only that connection.
  {
    net::Socket Bad =
        net::Socket::connectTo("127.0.0.1", Server.port(), 1000, &Error);
    ASSERT_TRUE(Bad.valid()) << Error;
    const char Garbage[32] = "this is not a cachewire frame.";
    ASSERT_TRUE(Bad.sendAll(Garbage, sizeof(Garbage), 1000));
  }

  // A well-formed client is unaffected.
  RemoteCacheBackend Client(clientConfig(Server));
  EXPECT_TRUE(Client.ping());
  EXPECT_TRUE(Client.put("fgbs-meas-00000000000000aa.v1", "fine"));
}

//===----------------------------------------------------------------------===//
// Fleet-wide writer leases
//===----------------------------------------------------------------------===//

TEST(WriterLease, MutualExclusionAndRelease) {
  TempDir Dir("lease");
  net::CacheServer Server(loopbackConfig(Dir, 1));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  RemoteCacheBackend A(clientConfig(Server));
  RemoteCacheBackend B(clientConfig(Server));
  const std::string Name = "fgbs-meas-00000000000000cc.v1";

  bool Granted = false;
  ASSERT_TRUE(A.lockAcquire(Name, /*Token=*/111, Granted));
  EXPECT_TRUE(Granted);
  // Renewal by the same token re-grants.
  ASSERT_TRUE(A.lockAcquire(Name, /*Token=*/111, Granted));
  EXPECT_TRUE(Granted);
  // A different token is denied while the lease is live.
  ASSERT_TRUE(B.lockAcquire(Name, /*Token=*/222, Granted));
  EXPECT_FALSE(Granted);
  // Releasing with the wrong token is refused; the right one works.
  ASSERT_TRUE(B.lockRelease(Name, /*Token=*/222));
  ASSERT_TRUE(B.lockAcquire(Name, /*Token=*/222, Granted));
  EXPECT_FALSE(Granted);
  ASSERT_TRUE(A.lockRelease(Name, /*Token=*/111));
  ASSERT_TRUE(B.lockAcquire(Name, /*Token=*/222, Granted));
  EXPECT_TRUE(Granted);
  ASSERT_TRUE(B.lockRelease(Name, /*Token=*/222));
}

TEST(WriterLease, ExpiresAfterTtl) {
  TempDir Dir("ttl");
  net::CacheServer Server(loopbackConfig(Dir, 1));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  RemoteCacheConfig Config = clientConfig(Server);
  Config.LeaseTtlMs = 100; // A crashed holder delays others 100ms, max.
  RemoteCacheBackend Crashed(std::move(Config));
  RemoteCacheBackend Waiter(clientConfig(Server));

  bool Granted = false;
  ASSERT_TRUE(Crashed.lockAcquire("fgbs-meas-00000000000000cd.v1", 333,
                                  Granted));
  ASSERT_TRUE(Granted);
  // "Crashed" never releases.  Within the TTL the lease holds...
  ASSERT_TRUE(
      Waiter.lockAcquire("fgbs-meas-00000000000000cd.v1", 444, Granted));
  EXPECT_FALSE(Granted);
  // ...and after it, the name is free again.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(
      Waiter.lockAcquire("fgbs-meas-00000000000000cd.v1", 444, Granted));
  EXPECT_TRUE(Granted);
}

TEST(WriterLease, WriterLockBlocksUntilPeerReleases) {
  TempDir Dir("lockwait");
  net::CacheServer Server(loopbackConfig(Dir, 1));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  RemoteCacheBackend A(clientConfig(Server));
  RemoteCacheBackend B(clientConfig(Server));
  const std::string Name = "fgbs-meas-00000000000000ce.v1";

  std::unique_ptr<WriterLock> LockA = A.writerLock(Name);
  FileLock::Options Fast;
  Fast.TimeoutMs = 5000;
  ASSERT_TRUE(static_cast<bool>(LockA->acquire(Fast)));

  std::atomic<bool> PeerAcquired{false};
  std::thread Peer([&] {
    std::unique_ptr<WriterLock> LockB = B.writerLock(Name);
    WriterLock::Result R = LockB->acquire(Fast);
    EXPECT_TRUE(static_cast<bool>(R)) << R.Message;
    PeerAcquired.store(true);
    LockB->release();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(PeerAcquired.load()) << "peer acquired a held lease";
  LockA->release();
  Peer.join();
  EXPECT_TRUE(PeerAcquired.load());
}

//===----------------------------------------------------------------------===//
// Degradation: a dead server never fails an operation
//===----------------------------------------------------------------------===//

TEST(Degradation, DeadServerDegradesWithCounters) {
  obs::MetricsRegistry::global().reset();
  obs::setEnabled(true);
  RemoteCacheBackend Client(deadServerConfig());
  std::string Bytes;
  EXPECT_FALSE(Client.exists("fgbs-meas-00000000000000d0.v1"));
  EXPECT_FALSE(Client.get("fgbs-meas-00000000000000d0.v1", Bytes));
  EXPECT_FALSE(Client.put("fgbs-meas-00000000000000d0.v1", "bytes"));
  EXPECT_TRUE(Client.scan("fgbs-meas-", ".v1").empty());
  EXPECT_GE(obs::counterTotal("db.cache.remote.errors"), 4u);
  obs::setEnabled(false);
}

TEST(Degradation, WriterLockAcquiresUnleasedWhenServerDead) {
  // The writer election degrades to "go ahead" — a dead coordination
  // server must never stall every training run in the fleet.
  RemoteCacheBackend Client(deadServerConfig());
  std::unique_ptr<WriterLock> Lock =
      Client.writerLock("fgbs-meas-00000000000000d1.v1");
  FileLock::Options Fast;
  Fast.TimeoutMs = 2000;
  WriterLock::Result R = Lock->acquire(Fast);
  EXPECT_TRUE(static_cast<bool>(R));
  EXPECT_NE(R.Message.find("unleased"), std::string::npos);
  Lock->release();
}

//===----------------------------------------------------------------------===//
// Tiered semantics
//===----------------------------------------------------------------------===//

TEST(Tiered, RemoteHitPopulatesLocalTier) {
  TempDir Dir("readthrough");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // Seed the server directly, as if another host published the entry.
  RemoteCacheBackend Seeder(clientConfig(Server));
  const std::string Name = "fgbs-meas-00000000000000e0.v1";
  ASSERT_TRUE(Seeder.put(Name, "fleet-shared bytes"));

  const std::string LocalDir = (Dir.Path / "local").string();
  TieredCacheBackend Tiered(
      std::make_unique<LocalDirBackend>(LocalDir),
      std::make_unique<RemoteCacheBackend>(clientConfig(Server)));

  obs::MetricsRegistry::global().reset();
  obs::setEnabled(true);
  std::string Bytes;
  ASSERT_TRUE(Tiered.get(Name, Bytes));
  EXPECT_EQ(Bytes, "fleet-shared bytes");
  EXPECT_EQ(obs::counterTotal("db.cache.tier.remote_hits"), 1u);
  EXPECT_TRUE(fs::exists(fs::path(LocalDir) / Name))
      << "a remote hit must back-fill the local tier";

  // The second read is local.
  ASSERT_TRUE(Tiered.get(Name, Bytes));
  EXPECT_EQ(obs::counterTotal("db.cache.tier.local_hits"), 1u);
  obs::setEnabled(false);
}

TEST(Tiered, PutWritesBackToRemoteAsynchronously) {
  TempDir Dir("writeback");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  const std::string Name = "fgbs-meas-00000000000000e1.v1";
  {
    TieredCacheBackend Tiered(
        std::make_unique<LocalDirBackend>((Dir.Path / "local").string()),
        std::make_unique<RemoteCacheBackend>(clientConfig(Server)));
    ASSERT_TRUE(Tiered.put(Name, "published locally"));
    Tiered.flushWriteBacks();
  }

  RemoteCacheBackend Checker(clientConfig(Server));
  std::string Bytes;
  ASSERT_TRUE(Checker.get(Name, Bytes));
  EXPECT_EQ(Bytes, "published locally");
}

TEST(Tiered, ManifestNeverCrossesTheNetwork) {
  TempDir Dir("manifest");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  TieredCacheBackend Tiered(
      std::make_unique<LocalDirBackend>((Dir.Path / "local").string()),
      std::make_unique<RemoteCacheBackend>(clientConfig(Server)));
  ASSERT_TRUE(Tiered.put(kMeasurementIndexName, "local manifest"));
  Tiered.flushWriteBacks();

  RemoteCacheBackend Checker(clientConfig(Server));
  EXPECT_FALSE(Checker.exists(kMeasurementIndexName));
}

//===----------------------------------------------------------------------===//
// End to end through buildMeasurementDatabase
//===----------------------------------------------------------------------===//

class RemoteBuildTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(makeSyntheticSuite(tinyConfig()));
    Targets = {makeAtom()};
  }
  static void TearDownTestSuite() {
    delete TheSuite;
    TheSuite = nullptr;
  }
  static Suite *TheSuite;
  static std::vector<Machine> Targets;
};

Suite *RemoteBuildTest::TheSuite = nullptr;
std::vector<Machine> RemoteBuildTest::Targets;

TEST_F(RemoteBuildTest, SecondHostLoadsWithZeroSimulation) {
  TempDir Dir("e2e");
  net::CacheServer Server(loopbackConfig(Dir, 4));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  const std::string Address = "127.0.0.1:" + std::to_string(Server.port());

  DatabaseBuildOptions HostA;
  HostA.Threads = 2;
  HostA.CacheDir = (Dir.Path / "hostA").string();
  HostA.CacheRemote = Address;

  obs::MetricsRegistry::global().reset();
  obs::setEnabled(true);
  auto DbA = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                      HostA);
  ASSERT_NE(DbA, nullptr);
  EXPECT_GT(obs::counterTotal("sim.execute"), 0u);
  EXPECT_EQ(obs::counterTotal("db.cache.stores"), 1u);

  // "Host B": a different local directory, warm only through the
  // server.  The paper's simulation cost is paid exactly once.
  DatabaseBuildOptions HostB = HostA;
  HostB.CacheDir = (Dir.Path / "hostB").string();
  obs::MetricsRegistry::global().reset();
  auto DbB = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                      HostB);
  ASSERT_NE(DbB, nullptr);
  EXPECT_EQ(obs::counterTotal("sim.execute"), 0u)
      << "host B re-simulated despite the shared server";
  EXPECT_EQ(obs::counterTotal("db.cache.hits"), 1u);
  EXPECT_EQ(obs::counterTotal("db.cache.tier.remote_hits"), 1u);
  obs::setEnabled(false);

  // Byte-identical results, not merely equivalent ones.
  const std::uint64_t Key =
      measurementKey(*TheSuite, makeNehalem(), Targets, {});
  EXPECT_EQ(serializeMeasurements(*DbA, Key), serializeMeasurements(*DbB, Key));
}

TEST_F(RemoteBuildTest, RemoteOnlyCacheWorksWithoutLocalDir) {
  TempDir Dir("remoteonly");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  DatabaseBuildOptions Options;
  Options.Threads = 2;
  Options.CacheRemote = "127.0.0.1:" + std::to_string(Server.port());

  obs::MetricsRegistry::global().reset();
  obs::setEnabled(true);
  auto First = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                        Options);
  ASSERT_NE(First, nullptr);
  EXPECT_GT(obs::counterTotal("sim.execute"), 0u);

  obs::MetricsRegistry::global().reset();
  auto Second = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                         Options);
  ASSERT_NE(Second, nullptr);
  EXPECT_EQ(obs::counterTotal("sim.execute"), 0u);
  EXPECT_EQ(obs::counterTotal("db.cache.hits"), 1u);
  obs::setEnabled(false);
}

TEST_F(RemoteBuildTest, DeadServerDegradesToLocalRun) {
  TempDir Dir("deadsrv");
  DatabaseBuildOptions Options;
  Options.Threads = 2;
  Options.CacheDir = (Dir.Path / "local").string();
  Options.CacheRemote = "127.0.0.1:1"; // Nothing listens here.

  obs::MetricsRegistry::global().reset();
  obs::setEnabled(true);
  auto Db = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                     Options);
  ASSERT_NE(Db, nullptr) << "a dead cache server must never fail a run";
  EXPECT_GT(obs::counterTotal("sim.execute"), 0u);
  EXPECT_GT(obs::counterTotal("db.cache.remote.errors"), 0u);
  // The local tier still works: a second run on the same directory is
  // a local hit even with the server still dead.
  obs::MetricsRegistry::global().reset();
  auto Again = buildMeasurementDatabase(*TheSuite, makeNehalem(), Targets,
                                        Options);
  ASSERT_NE(Again, nullptr);
  EXPECT_EQ(obs::counterTotal("sim.execute"), 0u);
  EXPECT_EQ(obs::counterTotal("db.cache.hits"), 1u);
  obs::setEnabled(false);
}

//===----------------------------------------------------------------------===//
// Satellite: crashed-writer temp files are invisible to scans
//===----------------------------------------------------------------------===//

TEST(TempFileHygiene, ScanSkipsFreshAndUnlinksStaleTempFiles) {
  TempDir Dir("tempfiles");
  LocalDirBackend Backend((Dir.Path / "cache").string());
  ASSERT_TRUE(Backend.put("fgbs-meas-00000000000000f0.v1", "real entry"));

  // A "crashed writer" leftover matching the scan filters by name.  One
  // fresh (a live writer may be about to rename it) and one stale.
  const fs::path Fresh =
      fs::path(Backend.dir()) / "fgbs-meas-00000000000000f1.v1.tmp.999.0";
  const fs::path Stale =
      fs::path(Backend.dir()) / "fgbs-meas-00000000000000f2.v1.tmp.999.1";
  { std::ofstream(Fresh.string()) << "partial"; }
  { std::ofstream(Stale.string()) << "partial"; }
  fs::last_write_time(Stale, fs::file_time_type::clock::now() -
                                 std::chrono::seconds(2 * 3600));

  std::vector<CacheEntry> Entries = Backend.scan("fgbs-meas-", "");
  ASSERT_EQ(Entries.size(), 1u) << "temp files leaked into the scan";
  EXPECT_EQ(Entries[0].Name, "fgbs-meas-00000000000000f0.v1");

  EXPECT_TRUE(fs::exists(Fresh)) << "a fresh temp file must be left alone";
  EXPECT_FALSE(fs::exists(Stale)) << "a stale temp file must be swept";
}

TEST(TempFileHygiene, ManifestRescanIgnoresTempFiles) {
  TempDir Dir("temprescan");
  const std::string CacheDir = (Dir.Path / "cache").string();
  MeasurementCache Cache(CacheDir);
  LocalDirBackend Direct(CacheDir);
  ASSERT_TRUE(Direct.put("fgbs-meas-00000000000000f3.v1", "entry"));
  const fs::path Temp =
      fs::path(CacheDir) / "fgbs-meas-00000000000000f4.v1.tmp.12.7";
  { std::ofstream(Temp.string()) << "partial write"; }

  // No manifest exists, so prune rebuilds from a scan — which must not
  // adopt the temp file as an entry.
  CachePruneStats Stats = Cache.prune(/*MaxBytes=*/0, /*MaxAgeSeconds=*/0);
  EXPECT_TRUE(Stats.RebuiltFromScan);
  EXPECT_EQ(Stats.Entries, 1u);
  EXPECT_EQ(Stats.Removed, 0u);
}

//===----------------------------------------------------------------------===//
// fgbs.cachestats.v1: the machine-readable stats surface
//===----------------------------------------------------------------------===//

TEST(StatsJson, SchemaCoversBothNamespaces) {
  TempDir Dir("stats_json");
  net::CacheServer Server(loopbackConfig(Dir, 2));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  RemoteCacheBackend Client(clientConfig(Server));

  // Populate both namespaces and tick the scan counter so every JSON
  // field below is exercised with a non-trivial value.
  ASSERT_TRUE(Client.put("fgbs-meas-00000000000000f0.v1", "meas bytes"));
  const std::string Sha = "model/stats-model/sha/" + std::string(64, 'f');
  ASSERT_TRUE(Client.put(Sha, "model bytes"));
  ASSERT_TRUE(Client.put("model/stats-model/ref/latest", "ref bytes"));
  ASSERT_TRUE(static_cast<bool>(Client.scanPrefix("model/")));

  RemoteCacheStats Stats;
  ASSERT_TRUE(Client.statsRemote(Stats));
  ASSERT_TRUE(Stats.HasModelStats);
  // ModelPuts counts every model-namespace store; ModelRefPuts is the
  // ref-only sub-count.
  EXPECT_EQ(Stats.ModelPuts, 2u);
  EXPECT_EQ(Stats.ModelRefPuts, 1u);
  EXPECT_EQ(Stats.ScanPrefixes, 1u);

  const std::string Json = renderStatsJson(Stats);
  std::optional<obs::JsonValue> Doc = obs::parseJson(Json);
  ASSERT_TRUE(Doc.has_value()) << "stats JSON must parse:\n" << Json;

  const obs::JsonValue *Schema = Doc->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->string(), "fgbs.cachestats.v1");

  const obs::JsonValue *Meas = Doc->find("meas");
  ASSERT_NE(Meas, nullptr);
  for (const char *Key : {"shards", "entries", "bytes", "hits", "misses"})
    EXPECT_NE(Meas->find(Key), nullptr) << "meas." << Key;
  EXPECT_EQ(Meas->find("entries")->number(), 1.0);
  EXPECT_EQ(Meas->find("shards")->elements().size(), 2u);

  const obs::JsonValue *Leases = Doc->find("leases");
  ASSERT_NE(Leases, nullptr);
  EXPECT_NE(Leases->find("granted"), nullptr);
  EXPECT_NE(Leases->find("denied"), nullptr);

  const obs::JsonValue *Farm = Doc->find("farm");
  ASSERT_NE(Farm, nullptr);
  for (const char *Key : {"pending", "claimed", "enqueued", "claims",
                          "completed", "requeued", "heartbeats", "dropped"})
    EXPECT_NE(Farm->find(Key), nullptr) << "farm." << Key;

  const obs::JsonValue *Model = Doc->find("model");
  ASSERT_NE(Model, nullptr);
  ASSERT_FALSE(Model->isNull());
  for (const char *Key :
       {"shards", "entries", "bytes", "gets", "puts", "ref_puts",
        "scan_prefixes"})
    EXPECT_NE(Model->find(Key), nullptr) << "model." << Key;
  EXPECT_EQ(Model->find("entries")->number(), 2.0) << "sha blob + ref";
  EXPECT_EQ(Model->find("puts")->number(), 2.0);
  EXPECT_EQ(Model->find("ref_puts")->number(), 1.0);
  EXPECT_EQ(Model->find("scan_prefixes")->number(), 1.0);

  Server.stop();
}

TEST(StatsJson, PreNamespaceServerRendersModelNull) {
  // A stats reply without the namespace extension (an old server) must
  // render "model": null — distinguishable from "zero models" — while
  // the measurement half stays fully populated.
  RemoteCacheStats Stats;
  Stats.Shards.resize(1);
  Stats.Shards[0].Entries = 7;
  Stats.Shards[0].Bytes = 4096;
  Stats.Hits = 3;
  ASSERT_FALSE(Stats.HasModelStats);
  const std::string Json = renderStatsJson(Stats);
  std::optional<obs::JsonValue> Doc = obs::parseJson(Json);
  ASSERT_TRUE(Doc.has_value()) << Json;
  const obs::JsonValue *Model = Doc->find("model");
  ASSERT_NE(Model, nullptr);
  EXPECT_TRUE(Model->isNull());
  EXPECT_EQ(Doc->find("meas")->find("entries")->number(), 7.0);
}

} // namespace
