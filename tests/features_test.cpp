//===- tests/features_test.cpp - Feature catalog and profiling ------------===//

#include "fgbs/analysis/Profiler.h"

#include "fgbs/dsl/Builder.h"

#include <gtest/gtest.h>

#include <set>

using namespace fgbs;

namespace {

Codelet divKernel(std::uint64_t Elems) {
  CodeletBuilder B("feat_div", "t");
  unsigned A = B.array("a", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 div(B.ld(A, StrideClass::Unit), constant(Precision::DP))));
  return B.take();
}

Codelet streamKernel(std::uint64_t Elems) {
  CodeletBuilder B("feat_stream", "t");
  unsigned A = B.array("a", Precision::DP, Elems);
  unsigned Bv = B.array("b", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 add(B.ld(Bv, StrideClass::Unit), constant(Precision::DP))));
  return B.take();
}

std::vector<double> featuresOf(const Codelet &C) {
  Machine Ref = makeNehalem();
  Measurement M = measureInApp(C, Ref);
  return computeFeatures(C, Ref, M);
}

} // namespace

TEST(FeatureCatalog, Has76Entries) {
  EXPECT_EQ(FeatureCatalog::get().size(), 76u);
  EXPECT_EQ(NumFeatures, 76u);
}

TEST(FeatureCatalog, Has40StaticAnd36Dynamic) {
  const FeatureCatalog &Cat = FeatureCatalog::get();
  EXPECT_EQ(Cat.staticIndices().size(), 40u);
  EXPECT_EQ(Cat.dynamicIndices().size(), 36u);
}

TEST(FeatureCatalog, NamesUnique) {
  const FeatureCatalog &Cat = FeatureCatalog::get();
  std::set<std::string> Names;
  for (std::size_t I = 0; I < Cat.size(); ++I)
    Names.insert(Cat.info(I).Name);
  EXPECT_EQ(Names.size(), Cat.size());
}

TEST(FeatureCatalog, Table2NamesResolve) {
  // The paper's Table 2 set: 4 Likwid + 10 MAQAO features.
  EXPECT_EQ(kTable2FeatureNames.size(), 14u);
  const FeatureCatalog &Cat = FeatureCatalog::get();
  unsigned Dynamic = 0;
  for (const std::string &Name : kTable2FeatureNames) {
    int Index = Cat.indexOf(Name);
    ASSERT_GE(Index, 0) << Name;
    Dynamic += Cat.info(static_cast<std::size_t>(Index)).Kind ==
               FeatureKind::Dynamic;
  }
  EXPECT_EQ(Dynamic, 4u);
}

TEST(FeatureCatalog, IndexOfUnknownIsMinusOne) {
  EXPECT_EQ(FeatureCatalog::get().indexOf("no.such.feature"), -1);
}

TEST(FeatureMaskOps, AllAndNamed) {
  FeatureMask All = allFeaturesMask();
  EXPECT_EQ(maskCount(All), 76u);
  FeatureMask Named = maskForNames(kTable2FeatureNames);
  EXPECT_EQ(maskCount(Named), 14u);
}

TEST(FeatureMaskOps, ApplyMaskProjects) {
  std::vector<double> Full(76);
  for (std::size_t I = 0; I < Full.size(); ++I)
    Full[I] = static_cast<double>(I);
  FeatureMask Mask(76, false);
  Mask[3] = Mask[10] = true;
  std::vector<double> Out = applyMask(Full, Mask);
  EXPECT_EQ(Out, (std::vector<double>{3.0, 10.0}));
}

TEST(Features, VectorHas76Entries) {
  EXPECT_EQ(featuresOf(streamKernel(1 << 20)).size(), 76u);
}

TEST(Features, DivCountSeparatesDivKernels) {
  const FeatureCatalog &Cat = FeatureCatalog::get();
  int DivIdx = Cat.indexOf("static.num_fp_div");
  ASSERT_GE(DivIdx, 0);
  std::vector<double> DivF = featuresOf(divKernel(1 << 20));
  std::vector<double> StreamF = featuresOf(streamKernel(1 << 20));
  EXPECT_GT(DivF[static_cast<std::size_t>(DivIdx)], 0.0);
  EXPECT_DOUBLE_EQ(StreamF[static_cast<std::size_t>(DivIdx)], 0.0);
}

TEST(Features, MemoryBandwidthHigherForStreaming) {
  const FeatureCatalog &Cat = FeatureCatalog::get();
  int BwIdx = Cat.indexOf("dynamic.memory_bandwidth_mbs");
  ASSERT_GE(BwIdx, 0);
  // 32 MB streaming vs 64 KB resident.
  std::vector<double> Big = featuresOf(streamKernel(4 << 20));
  std::vector<double> Small = featuresOf(streamKernel(8 << 10));
  EXPECT_GT(Big[static_cast<std::size_t>(BwIdx)],
            Small[static_cast<std::size_t>(BwIdx)]);
}

TEST(Features, VectorizationRatioReflectsCompilation) {
  const FeatureCatalog &Cat = FeatureCatalog::get();
  int VecIdx = Cat.indexOf("static.vec_ratio_overall");
  ASSERT_GE(VecIdx, 0);
  std::vector<double> F = featuresOf(streamKernel(1 << 20));
  EXPECT_DOUBLE_EQ(F[static_cast<std::size_t>(VecIdx)], 100.0);
}

TEST(Profiler, DiscardsSubMillionCycleCodelets) {
  Suite S;
  S.Name = "mini";
  Application App;
  App.Name = "t";
  App.Codelets.push_back(streamKernel(1 << 21)); // ~ms: kept.
  App.Codelets.push_back(streamKernel(1 << 10)); // ~us: discarded.
  S.Applications.push_back(std::move(App));
  std::vector<CodeletProfile> P = profileSuite(S, makeNehalem());
  ASSERT_EQ(P.size(), 2u);
  EXPECT_FALSE(P[0].Discarded);
  EXPECT_TRUE(P[1].Discarded);
}

TEST(Profiler, InAppAveragesInvocationGroups) {
  CodeletBuilder B("groups", "t");
  unsigned A = B.array("a", Precision::DP, 1 << 20);
  B.loops(1 << 20);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 mul(B.ld(A, StrideClass::Unit), constant(Precision::DP))));
  B.invocations(1, 1.0);
  B.invocations(1, 0.5);
  Codelet C = B.take();
  Machine Ref = makeNehalem();
  Measurement Avg = measureInApp(C, Ref);

  ExecutionRequest Full;
  Full.DatasetScale = 1.0;
  ExecutionRequest Half;
  Half.DatasetScale = 0.5;
  double Expect = 0.5 * (execute(C, Ref, Full).MeasuredSeconds +
                         execute(C, Ref, Half).MeasuredSeconds);
  EXPECT_NEAR(Avg.MeasuredSeconds, Expect, 1e-12);
}
