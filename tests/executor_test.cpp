//===- tests/executor_test.cpp - Execution model behaviour ----------------===//

#include "fgbs/sim/Executor.h"

#include "fgbs/dsl/Builder.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

/// Streaming triad over \p Elems DP elements.
Codelet triad(std::uint64_t Elems) {
  CodeletBuilder B("exec_triad_" + std::to_string(Elems), "t");
  unsigned A = B.array("a", Precision::DP, Elems);
  unsigned X = B.array("x", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 add(B.ld(X, StrideClass::Unit),
                     mul(constant(Precision::DP),
                         B.ld(A, StrideClass::Unit)))));
  return B.take();
}

/// Compute-heavy kernel over a tiny footprint.
Codelet computeHeavy() {
  CodeletBuilder B("exec_compute", "t");
  unsigned X = B.array("x", Precision::DP, 2048);
  B.loops(2048, 512);
  ExprPtr E = B.ld(X, StrideClass::Unit);
  for (int I = 0; I < 8; ++I)
    E = add(mul(std::move(E), constant(Precision::DP)),
            constant(Precision::DP));
  B.stmt(storeTo(B.at(X, StrideClass::Unit), std::move(E)));
  return B.take();
}

MemoryStreamDesc stream(std::int64_t StrideBytes, std::uint64_t Footprint,
                        bool IsStore = false) {
  return {StrideBytes, Footprint, 1, IsStore, 8};
}

} // namespace

TEST(MemoryBehavior, SmallFootprintStaysInL1) {
  Machine M = makeNehalem();
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(8, 8 * 1024)}, M, 1 << 20);
  ASSERT_EQ(B.size(), 1u);
  EXPECT_GT(B[0].ServedFraction[0], 0.95);
}

TEST(MemoryBehavior, HugeFootprintStreamsFromMemory) {
  Machine M = makeNehalem();
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(8, 256ull << 20)}, M, 1 << 22);
  // One DP element in eight starts a new line, which comes from DRAM.
  EXPECT_NEAR(B[0].ServedFraction[3], 0.125, 0.02);
  EXPECT_NEAR(B[0].ServedFraction[0], 0.875, 0.02);
}

TEST(MemoryBehavior, MidFootprintServedByL3) {
  Machine M = makeNehalem();
  // 4 MB fits L3 (12 MB) but not L2 (256 KB).
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(8, 4ull << 20)}, M, 1 << 22);
  EXPECT_NEAR(B[0].ServedFraction[2], 0.125, 0.02);
  EXPECT_LT(B[0].ServedFraction[3], 0.01);
}

TEST(MemoryBehavior, ZeroStrideAlwaysHits) {
  Machine M = makeNehalem();
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(0, 64)}, M, 1 << 20);
  EXPECT_GT(B[0].ServedFraction[0], 0.99);
}

TEST(MemoryBehavior, NegativeStrideWorks) {
  Machine M = makeNehalem();
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(-8, 64ull << 20)}, M, 1 << 22);
  EXPECT_NEAR(B[0].ServedFraction[3], 0.125, 0.02);
}

TEST(MemoryBehavior, LargeStrideMissesEveryAccess) {
  Machine M = makeNehalem();
  // 4 KB stride over 64 MB: every access opens a new line from DRAM.
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(4096, 64ull << 20)}, M, 1 << 20);
  EXPECT_GT(B[0].ServedFraction[3], 0.9);
  EXPECT_FALSE(B[0].Prefetchable);
}

TEST(MemoryBehavior, SmallStridePrefetchable) {
  Machine M = makeNehalem();
  std::vector<StreamBehavior> B =
      sampleMemoryBehavior({stream(8, 1 << 20)}, M, 1 << 20);
  EXPECT_TRUE(B[0].Prefetchable);
}

TEST(MemoryBehavior, CachedWrapperMatches) {
  Machine M = makeNehalem();
  std::vector<MemoryStreamDesc> S = {stream(8, 1 << 20)};
  std::vector<StreamBehavior> A = sampleMemoryBehaviorCached(S, M, 1 << 20);
  std::vector<StreamBehavior> B = sampleMemoryBehaviorCached(S, M, 1 << 20);
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(A[0].ServedFraction, B[0].ServedFraction);
}

TEST(Executor, Deterministic) {
  Codelet C = triad(1 << 20);
  ExecutionRequest R;
  Measurement A = execute(C, makeNehalem(), R);
  Measurement B = execute(C, makeNehalem(), R);
  EXPECT_DOUBLE_EQ(A.TrueSeconds, B.TrueSeconds);
  EXPECT_DOUBLE_EQ(A.MeasuredSeconds, B.MeasuredSeconds);
}

TEST(Executor, MeasuredCloseToTrue) {
  Codelet C = triad(1 << 21);
  Measurement M = execute(C, makeNehalem(), {});
  EXPECT_GT(M.TrueSeconds, 0.0);
  EXPECT_NEAR(M.MeasuredSeconds / M.TrueSeconds, 1.0, 0.15);
}

TEST(Executor, LargerDatasetTakesLonger) {
  Codelet C = triad(1 << 21);
  ExecutionRequest Small;
  Small.DatasetScale = 0.5;
  ExecutionRequest Large;
  Large.DatasetScale = 2.0;
  double TSmall = execute(C, makeNehalem(), Small).TrueSeconds;
  double TLarge = execute(C, makeNehalem(), Large).TrueSeconds;
  EXPECT_GT(TLarge, 2.0 * TSmall);
}

TEST(Executor, MachineOrderingOnComputeKernel) {
  Codelet C = computeHeavy();
  double NH = execute(C, makeNehalem(), {}).TrueSeconds;
  double Atom = execute(C, makeAtom(), {}).TrueSeconds;
  double C2 = execute(C, makeCore2(), {}).TrueSeconds;
  double SB = execute(C, makeSandyBridge(), {}).TrueSeconds;
  // Compute bound: frequency and core width dominate.
  EXPECT_GT(Atom, NH); // Atom slowest.
  EXPECT_LT(C2, NH);   // Core 2 wins on frequency.
  EXPECT_LT(SB, NH);   // Sandy Bridge fastest or near.
}

TEST(Executor, MemoryBoundSlowerOnCore2) {
  // Streaming kernel beyond every cache: Core 2's FSB loses to Nehalem.
  Codelet C = triad(16 << 20);
  double NH = execute(C, makeNehalem(), {}).TrueSeconds;
  double C2 = execute(C, makeCore2(), {}).TrueSeconds;
  EXPECT_GT(C2, NH);
}

TEST(Executor, CountersConsistent) {
  Codelet C = triad(1 << 21);
  Measurement M = execute(C, makeNehalem(), {});
  const PerfCounters &Ctr = M.Counters;
  EXPECT_GT(Ctr.Cycles, 0.0);
  EXPECT_GT(Ctr.Uops, 0.0);
  EXPECT_GT(Ctr.FpOpsDP, 0.0);
  EXPECT_DOUBLE_EQ(Ctr.FpOpsSP, 0.0);
  EXPECT_GT(Ctr.L1Accesses, 0.0);
  // The cache pyramid: lines entering L1 >= lines from L3 >= from DRAM.
  EXPECT_GE(Ctr.L2LinesIn, Ctr.L3LinesIn);
  EXPECT_GE(Ctr.L3LinesIn, Ctr.MemLinesIn);
  EXPECT_GT(Ctr.LoadBytes, 0.0);
  EXPECT_GT(Ctr.StoreBytes, 0.0);
  EXPECT_DOUBLE_EQ(Ctr.Seconds, M.TrueSeconds);
}

TEST(Executor, WarmReplayOnlyAffectsFlaggedCodelets) {
  Codelet Plain = triad(256 << 20 >> 3); // 32M elements, streaming.
  ExecutionRequest Cold;
  ExecutionRequest Warm;
  Warm.WarmCacheReplay = true;
  double PlainCold = execute(Plain, makeAtom(), Cold).TrueSeconds;
  double PlainWarm = execute(Plain, makeAtom(), Warm).TrueSeconds;
  EXPECT_DOUBLE_EQ(PlainCold, PlainWarm);

  Codelet Flagged = triad(256 << 20 >> 3);
  Flagged.Traits.CacheStateSensitive = true;
  double FlaggedCold = execute(Flagged, makeAtom(), Cold).TrueSeconds;
  double FlaggedWarm = execute(Flagged, makeAtom(), Warm).TrueSeconds;
  EXPECT_LT(FlaggedWarm, FlaggedCold);
}

TEST(Executor, WarmReplayNegligibleOnBigCacheMachines) {
  Codelet Flagged = triad(1 << 21); // 16 MB streams.
  Flagged.Traits.CacheStateSensitive = true;
  ExecutionRequest Cold;
  ExecutionRequest Warm;
  Warm.WarmCacheReplay = true;
  double NHCold = execute(Flagged, makeNehalem(), Cold).TrueSeconds;
  double NHWarm = execute(Flagged, makeNehalem(), Warm).TrueSeconds;
  // Footprint/LLC ratio is tiny on Nehalem: no warm-replay advantage.
  EXPECT_NEAR(NHWarm / NHCold, 1.0, 1e-9);
}

TEST(Executor, StandaloneCompilationChangesContextSensitiveTime) {
  Codelet C = triad(1 << 21);
  C.Traits.CompilationContextSensitive = true;
  ExecutionRequest InApp;
  ExecutionRequest Alone;
  Alone.Context = CompilationContext::Standalone;
  double TIn = execute(C, makeNehalem(), InApp).TrueSeconds;
  double TAlone = execute(C, makeNehalem(), Alone).TrueSeconds;
  // Vectorization lost standalone: must be slower.
  EXPECT_GT(TAlone, TIn);
}

TEST(Executor, ShortCodeletsNoisier) {
  // The noise model must hurt microsecond-scale codelets more than
  // 100 ms ones.  Compare relative measured/true spread across scales.
  Codelet Short = triad(1 << 14);
  Codelet Long = triad(1 << 24);
  Measurement MS = execute(Short, makeNehalem(), {});
  Measurement ML = execute(Long, makeNehalem(), {});
  double ShortDev = std::abs(MS.MeasuredSeconds / MS.TrueSeconds - 1.0);
  double LongDev = std::abs(ML.MeasuredSeconds / ML.TrueSeconds - 1.0);
  // Not a strict per-draw guarantee, but the probe overhead alone makes
  // the short codelet's relative deviation larger.
  EXPECT_GT(ShortDev + 1e-12, LongDev * 0.01);
  EXPECT_GT(MS.MeasuredSeconds, MS.TrueSeconds * 0.8);
}
