//===- tests/synthetic_test.cpp - Generator + fuzz round-trips ------------===//

#include "fgbs/suites/Synthetic.h"

#include "fgbs/compiler/Compiler.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/dsl/Text.h"
#include "fgbs/sim/Executor.h"

#include <gtest/gtest.h>

#include <set>

using namespace fgbs;

TEST(Synthetic, DeterministicBySeed) {
  Suite A = makeSyntheticSuite({});
  Suite B = makeSyntheticSuite({});
  EXPECT_EQ(printSuite(A), printSuite(B));
  SyntheticConfig Other;
  Other.Seed = 99;
  EXPECT_NE(printSuite(A), printSuite(makeSyntheticSuite(Other)));
}

TEST(Synthetic, RespectsShape) {
  SyntheticConfig Config;
  Config.NumApplications = 3;
  Config.CodeletsPerApp = 5;
  Suite S = makeSyntheticSuite(Config);
  EXPECT_EQ(S.Applications.size(), 3u);
  EXPECT_EQ(S.numCodelets(), 15u);
  std::set<std::string> Names;
  for (const Codelet *C : S.allCodelets())
    Names.insert(C->Name);
  EXPECT_EQ(Names.size(), 15u);
}

TEST(Synthetic, FootprintsWithinRange) {
  SyntheticConfig Config;
  Config.MinFootprintBytes = 4 << 20;
  Config.MaxFootprintBytes = 8 << 20;
  Config.Seed = 7;
  Suite S = makeSyntheticSuite(Config);
  for (const Codelet *C : S.allCodelets()) {
    // Multi-array codelets can hold up to ~2.2x the drawn footprint
    // (two arrays plus rounding up to the minimum element count).
    EXPECT_GE(C->footprintBytes(), 1u << 20) << C->Name;
    EXPECT_LE(C->footprintBytes(), 20u << 20) << C->Name;
  }
}

class SyntheticSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticSeeds, EveryCodeletCompilesAndExecutes) {
  SyntheticConfig Config;
  Config.Seed = GetParam();
  Config.NumApplications = 2;
  Config.CodeletsPerApp = 6;
  Suite S = makeSyntheticSuite(Config);
  Machine M = makeNehalem();
  for (const Codelet *C : S.allCodelets()) {
    BinaryLoop Loop = compile(*C, M, CompilationContext::InApplication);
    EXPECT_FALSE(Loop.Body.empty()) << C->Name;
    Measurement R = execute(*C, M, {});
    EXPECT_GT(R.TrueSeconds, 0.0) << C->Name;
  }
}

TEST_P(SyntheticSeeds, TextRoundTripIsFixedPoint) {
  // Fuzz-style: every generated suite must survive print -> parse ->
  // print bit-identically.
  SyntheticConfig Config;
  Config.Seed = GetParam();
  Suite S = makeSyntheticSuite(Config);
  std::string Printed = printSuite(S);
  ParseResult<Suite> Back = parseSuite(Printed);
  if (auto *E = std::get_if<ParseError>(&Back))
    FAIL() << "seed " << GetParam() << ": " << E->render();
  EXPECT_EQ(printSuite(std::get<Suite>(Back)), Printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(Synthetic, PipelineEndToEnd) {
  // A generated suite flows through the whole method.
  SyntheticConfig Config;
  Config.NumApplications = 2;
  Config.CodeletsPerApp = 5;
  Config.MinFootprintBytes = 2 << 20;
  Config.MaxFootprintBytes = 16 << 20;
  Config.Seed = 42;
  Suite S = makeSyntheticSuite(Config);
  MeasurementDatabase Db(S, makeNehalem(), {makeSandyBridge()});
  PipelineResult R = Pipeline(Db, PipelineConfig()).run();
  ASSERT_GT(R.Selection.FinalK, 0u);
  EXPECT_LE(R.Targets[0].MedianErrorPercent, 50.0);
  EXPECT_GT(R.Targets[0].Reduction.totalFactor(), 1.0);
}
