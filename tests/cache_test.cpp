//===- tests/cache_test.cpp - Set-associative LRU cache simulator ---------===//

#include "fgbs/sim/Cache.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

CacheLevelConfig smallCache(std::uint64_t SizeBytes, unsigned Assoc) {
  return {"T", SizeBytes, Assoc, 64, 4.0, 16.0};
}

} // namespace

TEST(CacheLevel, FirstAccessMisses) {
  CacheLevel L(smallCache(1024, 2));
  EXPECT_FALSE(L.access(0));
  EXPECT_EQ(L.misses(), 1u);
  EXPECT_EQ(L.hits(), 0u);
}

TEST(CacheLevel, SecondAccessHits) {
  CacheLevel L(smallCache(1024, 2));
  L.access(128);
  EXPECT_TRUE(L.access(128));
  EXPECT_EQ(L.hits(), 1u);
}

TEST(CacheLevel, SameLineHits) {
  CacheLevel L(smallCache(1024, 2));
  L.access(0);
  // Same 64-byte line.
  EXPECT_TRUE(L.access(63));
  // Next line misses.
  EXPECT_FALSE(L.access(64));
}

TEST(CacheLevel, LruEviction) {
  // 2 sets x 2 ways; addresses 0, 128, 256 map to set 0.
  CacheLevel L(smallCache(256, 2));
  L.access(0);
  L.access(128);
  L.access(256); // Evicts line 0 (LRU).
  EXPECT_FALSE(L.access(0));
  EXPECT_TRUE(L.access(128) || true); // 128 may have been evicted by refill.
}

TEST(CacheLevel, LruKeepsMostRecentlyUsed) {
  CacheLevel L(smallCache(256, 2));
  L.access(0);
  L.access(128);
  L.access(0);   // 0 becomes MRU; 128 is now LRU.
  L.access(256); // Evicts 128.
  EXPECT_TRUE(L.access(0));
  EXPECT_FALSE(L.access(128));
}

TEST(CacheLevel, AssociativityRespected) {
  // Fully conflicting: 1 set x 4 ways.
  CacheLevel L(smallCache(256, 4));
  for (std::uint64_t I = 0; I < 4; ++I)
    L.access(I * 64);
  L.resetCounters();
  for (std::uint64_t I = 0; I < 4; ++I)
    EXPECT_TRUE(L.access(I * 64));
  EXPECT_EQ(L.hits(), 4u);
}

TEST(CacheLevel, FlushDropsState) {
  CacheLevel L(smallCache(1024, 2));
  L.access(0);
  L.flush();
  EXPECT_FALSE(L.access(0));
}

TEST(CacheLevel, TouchWarmsWithoutCounting) {
  CacheLevel L(smallCache(1024, 2));
  L.touch(0);
  EXPECT_EQ(L.misses(), 0u);
  EXPECT_TRUE(L.access(0));
}

TEST(CacheLevel, StreamingMissesEveryLine) {
  CacheLevel L(smallCache(4096, 8));
  // Walk far beyond capacity: every new line misses.
  std::uint64_t Misses = 0;
  for (std::uint64_t A = 0; A < 1 << 20; A += 64)
    Misses += !L.access(A);
  EXPECT_EQ(Misses, (1u << 20) / 64);
}

TEST(CacheHierarchy, ServiceLevels) {
  Machine M = makeNehalem();
  CacheHierarchy H(M);
  EXPECT_EQ(H.numLevels(), 3u);
  // Cold access is served by memory.
  EXPECT_EQ(H.access(0), 3u);
  // Now resident everywhere: L1 serves.
  EXPECT_EQ(H.access(0), 0u);
}

TEST(CacheHierarchy, L2ServesAfterL1Eviction) {
  Machine M = makeNehalem();
  CacheHierarchy H(M);
  H.access(0);
  // Thrash L1 (32 KB) without exceeding L2 (256 KB).
  for (std::uint64_t A = 4096; A < 4096 + 64 * 1024; A += 64)
    H.access(A);
  ServiceLevel S = H.access(0);
  EXPECT_GE(S, 1u);
  EXPECT_LE(S, 2u);
}

TEST(CacheHierarchy, WorkingSetWithinL1StaysL1) {
  Machine M = makeNehalem();
  CacheHierarchy H(M);
  // 8 KB working set, repeatedly accessed.
  for (int Pass = 0; Pass < 3; ++Pass)
    for (std::uint64_t A = 0; A < 8192; A += 64)
      H.access(A);
  H.resetCounters();
  std::uint64_t L1Hits = 0;
  for (std::uint64_t A = 0; A < 8192; A += 64)
    L1Hits += H.access(A) == 0;
  EXPECT_EQ(L1Hits, 8192u / 64);
}

TEST(CacheHierarchy, AtomHasTwoLevels) {
  CacheHierarchy H(makeAtom());
  EXPECT_EQ(H.numLevels(), 2u);
  EXPECT_EQ(H.access(0), 2u); // DRAM.
}

TEST(CacheHierarchy, ResetCountersKeepsContents) {
  CacheHierarchy H(makeNehalem());
  H.access(0);
  H.resetCounters();
  EXPECT_EQ(H.level(0).hits(), 0u);
  EXPECT_EQ(H.access(0), 0u); // Still resident.
}

TEST(CacheHierarchy, FlushEmptiesAllLevels) {
  CacheHierarchy H(makeNehalem());
  H.access(0);
  H.flush();
  EXPECT_EQ(H.access(0), 3u);
}
