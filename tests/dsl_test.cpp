//===- tests/dsl_test.cpp - Codelet IR and builder ------------------------===//

#include "fgbs/dsl/Builder.h"
#include "fgbs/dsl/Codelet.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

Codelet makeTriad() {
  CodeletBuilder B("triad", "demo");
  B.pattern("DP: triad");
  unsigned A = B.array("a", Precision::DP, 1000);
  unsigned X = B.array("x", Precision::DP, 1000);
  B.loops(1000, 2);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 add(B.ld(X, StrideClass::Unit),
                     mul(constant(Precision::DP),
                         B.ld(A, StrideClass::Unit)))));
  return B.take();
}

} // namespace

TEST(Dsl, LoopNestTotals) {
  LoopNest Nest;
  Nest.InnerTripCount = 100;
  Nest.OuterIterations = 7;
  EXPECT_EQ(Nest.totalIterations(), 700u);
}

TEST(Dsl, BuilderBasics) {
  Codelet C = makeTriad();
  EXPECT_EQ(C.Name, "triad");
  EXPECT_EQ(C.App, "demo");
  EXPECT_EQ(C.Arrays.size(), 2u);
  EXPECT_EQ(C.Body.size(), 1u);
  EXPECT_EQ(C.Nest.totalIterations(), 2000u);
  EXPECT_EQ(C.totalInvocations(), 1u);
  EXPECT_EQ(C.footprintBytes(), 2u * 1000 * 8);
}

TEST(Dsl, DefaultStrides) {
  CodeletBuilder B("s", "s");
  unsigned A = B.array("a", Precision::DP, 10);
  EXPECT_EQ(B.at(A, StrideClass::Zero).StrideElems, 0);
  EXPECT_EQ(B.at(A, StrideClass::Unit).StrideElems, 1);
  EXPECT_EQ(B.at(A, StrideClass::NegUnit).StrideElems, -1);
  EXPECT_EQ(B.at(A, StrideClass::Small).StrideElems, 4);
  EXPECT_EQ(B.at(A, StrideClass::Lda).StrideElems, 512);
  EXPECT_EQ(B.at(A, StrideClass::Stencil).StrideElems, 1);
  EXPECT_EQ(B.at(A, StrideClass::Stencil, 1, 5).PointsPerIter, 5u);
  // take() requires a body; give it one.
  B.stmt(reduce(BinOp::Add, B.ld(A, StrideClass::Unit)));
  (void)B.take();
}

TEST(Dsl, InvocationGroups) {
  CodeletBuilder B("multi", "demo");
  unsigned A = B.array("a", Precision::DP, 100);
  B.loops(100);
  B.stmt(reduce(BinOp::Add, B.ld(A, StrideClass::Unit)));
  B.invocations(10, 1.0);
  B.invocations(30, 0.5);
  Codelet C = B.take();
  EXPECT_EQ(C.totalInvocations(), 40u);
  EXPECT_DOUBLE_EQ(C.capturedDatasetScale(), 1.0);
  EXPECT_DOUBLE_EQ(C.averageDatasetScale(), (10 * 1.0 + 30 * 0.5) / 40.0);
}

TEST(Dsl, StrideSummaryOrder) {
  CodeletBuilder B("strides", "demo");
  unsigned A = B.array("a", Precision::DP, 100);
  unsigned Bv = B.array("b", Precision::DP, 100);
  B.loops(100);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 add(B.ld(Bv, StrideClass::NegUnit),
                     B.ld(Bv, StrideClass::Zero))));
  Codelet C = B.take();
  EXPECT_EQ(C.strideSummary(), "0 & 1 & -1");
}

TEST(Dsl, CloneIsDeep) {
  Codelet C = makeTriad();
  Codelet D = C.clone();
  EXPECT_EQ(D.Name, C.Name);
  ASSERT_EQ(D.Body.size(), C.Body.size());
  EXPECT_NE(D.Body[0].Rhs.get(), C.Body[0].Rhs.get());
  EXPECT_EQ(D.Body[0].Rhs->Kind, C.Body[0].Rhs->Kind);
}

TEST(Dsl, CountLoads) {
  Codelet C = makeTriad();
  EXPECT_EQ(countLoads(*C.Body[0].Rhs), 2u);
}

TEST(Dsl, MixedPrecisionPromotion) {
  ExprPtr E = mul(constant(Precision::SP), constant(Precision::DP));
  EXPECT_EQ(E->Prec, Precision::DP);
}

TEST(Dsl, CollectStreams) {
  Codelet C = makeTriad();
  std::vector<MemoryStreamDesc> Streams = collectStreams(C);
  // One store (a), two loads (x, a).
  ASSERT_EQ(Streams.size(), 3u);
  EXPECT_TRUE(Streams[0].IsStore);
  EXPECT_FALSE(Streams[1].IsStore);
  EXPECT_EQ(Streams[0].StrideBytes, 8);
  EXPECT_EQ(Streams[0].FootprintBytes, 8000u);
  EXPECT_EQ(Streams[0].ElemBytes, 8u);
}

TEST(Dsl, CollectStreamsScales) {
  Codelet C = makeTriad();
  std::vector<MemoryStreamDesc> Half = collectStreams(C, 0.5);
  EXPECT_EQ(Half[0].FootprintBytes, 4000u);
  // Scale never produces a zero footprint.
  std::vector<MemoryStreamDesc> Tiny = collectStreams(C, 1e-9);
  EXPECT_GE(Tiny[0].FootprintBytes, 8u);
}

TEST(Dsl, SuiteAggregation) {
  Suite S;
  S.Name = "mini";
  Application App;
  App.Name = "demo";
  App.Codelets.push_back(makeTriad());
  App.Codelets.push_back(makeTriad());
  S.Applications.push_back(std::move(App));
  EXPECT_EQ(S.numCodelets(), 2u);
  EXPECT_EQ(S.allCodelets().size(), 2u);
  EXPECT_EQ(S.allCodelets()[0]->Name, "triad");
}

TEST(Dsl, StrideClassNames) {
  EXPECT_EQ(strideClassName(StrideClass::Zero), "0");
  EXPECT_EQ(strideClassName(StrideClass::Lda), "LDA");
  EXPECT_EQ(strideClassName(StrideClass::Stencil), "stencil");
}

TEST(Dsl, BehaviorTraitsDefaultOff) {
  Codelet C = makeTriad();
  EXPECT_FALSE(C.Traits.CompilationContextSensitive);
  EXPECT_FALSE(C.Traits.CacheStateSensitive);
}
