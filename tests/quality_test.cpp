//===- tests/quality_test.cpp - Silhouette, CH index, rendering -----------===//

#include "fgbs/cluster/Quality.h"
#include "fgbs/cluster/Render.h"

#include "fgbs/support/Rng.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

FeatureTable twoBlobs(std::uint64_t Seed = 11) {
  Rng R(Seed);
  FeatureTable Points;
  for (int I = 0; I < 8; ++I)
    Points.push_back({R.normal(0.0, 0.2), R.normal(0.0, 0.2)});
  for (int I = 0; I < 8; ++I)
    Points.push_back({R.normal(8.0, 0.2), R.normal(8.0, 0.2)});
  return Points;
}

Clustering perfectSplit() {
  Clustering C;
  C.K = 2;
  C.Assignment.assign(16, 0);
  for (int I = 8; I < 16; ++I)
    C.Assignment[I] = 1;
  return C;
}

Clustering badSplit() {
  Clustering C;
  C.K = 2;
  // Alternating labels: each cluster straddles both blobs.
  C.Assignment.resize(16);
  for (int I = 0; I < 16; ++I)
    C.Assignment[I] = I % 2;
  return C;
}

} // namespace

TEST(Silhouette, PerfectSplitNearOne) {
  FeatureTable Points = twoBlobs();
  double Score = silhouetteScore(Points, perfectSplit());
  EXPECT_GT(Score, 0.9);
}

TEST(Silhouette, BadSplitNearZeroOrNegative) {
  FeatureTable Points = twoBlobs();
  double Good = silhouetteScore(Points, perfectSplit());
  double Bad = silhouetteScore(Points, badSplit());
  EXPECT_LT(Bad, Good);
  EXPECT_LT(Bad, 0.2);
}

TEST(Silhouette, ValuesInRange) {
  FeatureTable Points = twoBlobs(5);
  for (const Clustering &C : {perfectSplit(), badSplit()})
    for (double V : silhouetteValues(Points, C)) {
      EXPECT_GE(V, -1.0);
      EXPECT_LE(V, 1.0);
    }
}

TEST(Silhouette, SingletonScoresZero) {
  FeatureTable Points = {{0.0}, {1.0}, {10.0}};
  Clustering C;
  C.K = 2;
  C.Assignment = {0, 0, 1}; // Point 2 is a singleton.
  std::vector<double> V = silhouetteValues(Points, C);
  EXPECT_DOUBLE_EQ(V[2], 0.0);
  EXPECT_GT(V[0], 0.0);
}

TEST(Silhouette, SelectsBlobCount) {
  FeatureTable Points = twoBlobs(42);
  Dendrogram Tree = hierarchicalCluster(Points);
  EXPECT_EQ(silhouetteK(Points, Tree, 10), 2u);
}

TEST(CalinskiHarabasz, PrefersTrueSplit) {
  FeatureTable Points = twoBlobs(17);
  double Good = calinskiHarabasz(Points, perfectSplit());
  double Bad = calinskiHarabasz(Points, badSplit());
  EXPECT_GT(Good, Bad);
  EXPECT_GT(Good, 100.0);
}

TEST(RenderDendrogram, ContainsAllLabels) {
  FeatureTable Points = {{0.0}, {1.0}, {10.0}, {11.0}};
  Dendrogram Tree = hierarchicalCluster(Points);
  std::string Out =
      renderDendrogram(Tree, {"alpha", "beta", "gamma", "delta"});
  for (const char *Label : {"alpha", "beta", "gamma", "delta"})
    EXPECT_NE(Out.find(Label), std::string::npos) << Label;
  // Three merges -> three height lines.
  std::size_t Heights = 0;
  for (std::size_t P = Out.find("h="); P != std::string::npos;
       P = Out.find("h=", P + 1))
    ++Heights;
  EXPECT_EQ(Heights, 3u);
}

TEST(RenderDendrogram, MarksCut) {
  FeatureTable Points = {{0.0}, {1.0}, {10.0}, {11.0}};
  Dendrogram Tree = hierarchicalCluster(Points);
  std::string NoCut = renderDendrogram(Tree, {"a", "b", "c", "d"});
  EXPECT_EQ(NoCut.find("<-- cut"), std::string::npos);
  std::string Cut2 = renderDendrogram(Tree, {"a", "b", "c", "d"}, 2);
  // Cutting into 2 clusters undoes exactly the last merge.
  std::size_t Marks = 0;
  for (std::size_t P = Cut2.find("<-- cut"); P != std::string::npos;
       P = Cut2.find("<-- cut", P + 1))
    ++Marks;
  EXPECT_EQ(Marks, 1u);
}

TEST(RenderDendrogram, SingleLeaf) {
  FeatureTable Points = {{1.0}};
  Dendrogram Tree = hierarchicalCluster(Points);
  EXPECT_EQ(renderDendrogram(Tree, {"only"}), "only\n");
}
