//===- tests/net_framing_test.cpp - fgbs.cachewire.v1 frames --------------===//
//
// The wire layer under the remote measurement cache: frame encoding,
// header validation (magic, version, size ceiling, CRC), socket
// deadlines, and the host:port parser shared by --cache-remote and
// FGBS_MEAS_CACHE_REMOTE.
//
//===----------------------------------------------------------------------===//

#include "fgbs/net/Framing.h"
#include "fgbs/net/Socket.h"
#include "fgbs/support/BinaryIo.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include <sys/socket.h>

using namespace fgbs;
using namespace fgbs::net;

namespace {

/// A connected pair of Sockets over socketpair(2) — the frame layer is
/// transport-agnostic, so AF_UNIX is as good as TCP and needs no port.
struct SocketPair {
  Socket A, B;
  SocketPair() {
    int Fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Socket(Fds[0]);
    B = Socket(Fds[1]);
  }
};

/// Pushes raw bytes through a pair and reads one frame back.
WireError roundTripRaw(const std::string &Bytes, Frame &Out,
                       bool CloseAfter = true) {
  SocketPair Pair;
  EXPECT_TRUE(Pair.A.sendAll(Bytes.data(), Bytes.size(), 1000));
  if (CloseAfter)
    Pair.A.close(); // So truncation surfaces as Io, not Timeout.
  return readFrame(Pair.B, Out, 1000);
}

TEST(Framing, EncodeLayout) {
  const std::string Payload = "payload bytes";
  std::string Bytes = encodeFrame(Opcode::Put, Payload);
  ASSERT_EQ(Bytes.size(), kWireHeaderBytes + Payload.size());
  EXPECT_EQ(Bytes.substr(0, 8), "FGBSCWV1");
  binio::ByteReader In(std::string_view(Bytes).substr(8));
  EXPECT_EQ(In.u32(), kWireVersion);
  EXPECT_EQ(In.u32(), static_cast<std::uint32_t>(Opcode::Put));
  EXPECT_EQ(In.u64(), Payload.size());
}

TEST(Framing, RoundTrip) {
  Frame Out;
  std::string Payload(4096, '\0');
  for (std::size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = static_cast<char>(I % 256);
  ASSERT_EQ(roundTripRaw(encodeFrame(Opcode::Get, Payload), Out),
            WireError::None);
  EXPECT_EQ(Out.Op, Opcode::Get);
  EXPECT_EQ(Out.Payload, Payload);
}

TEST(Framing, EmptyPayloadRoundTrip) {
  Frame Out;
  ASSERT_EQ(roundTripRaw(encodeFrame(Opcode::Ping, {}), Out),
            WireError::None);
  EXPECT_EQ(Out.Op, Opcode::Ping);
  EXPECT_TRUE(Out.Payload.empty());
}

TEST(Framing, BadMagicRejected) {
  std::string Bytes = encodeFrame(Opcode::Ping, "x");
  Bytes[0] = 'X';
  Frame Out;
  EXPECT_EQ(roundTripRaw(Bytes, Out), WireError::BadMagic);
}

TEST(Framing, UnsupportedVersionRejected) {
  std::string Bytes = encodeFrame(Opcode::Ping, "x");
  Bytes[8] = static_cast<char>(kWireVersion + 1); // Version field, LE.
  Frame Out;
  EXPECT_EQ(roundTripRaw(Bytes, Out), WireError::UnsupportedVersion);
}

TEST(Framing, OversizeRejectedBeforeAllocation) {
  std::string Bytes = encodeFrame(Opcode::Ping, "x");
  // Announce an absurd payload size (bytes [16..24), little-endian).
  for (int I = 0; I < 8; ++I)
    Bytes[16 + I] = static_cast<char>(0xff);
  Frame Out;
  EXPECT_EQ(roundTripRaw(Bytes, Out), WireError::Oversize);
}

TEST(Framing, ChecksumMismatchDetected) {
  std::string Bytes = encodeFrame(Opcode::Put, "some payload");
  Bytes.back() ^= 0x01; // Flip one payload bit; the CRC must catch it.
  Frame Out;
  EXPECT_EQ(roundTripRaw(Bytes, Out), WireError::ChecksumMismatch);
}

TEST(Framing, TruncatedPayloadIsIo) {
  std::string Bytes = encodeFrame(Opcode::Put, "some payload");
  Bytes.resize(Bytes.size() - 4); // Header promises more than arrives.
  Frame Out;
  EXPECT_EQ(roundTripRaw(Bytes, Out), WireError::Io);
}

TEST(Framing, TruncatedHeaderIsIo) {
  std::string Bytes = encodeFrame(Opcode::Put, "payload");
  Bytes.resize(10); // Mid-header EOF.
  Frame Out;
  EXPECT_EQ(roundTripRaw(Bytes, Out), WireError::Io);
}

TEST(Framing, CleanCloseIsClosed) {
  Frame Out;
  EXPECT_EQ(roundTripRaw({}, Out), WireError::Closed);
}

TEST(Framing, NoBytesIsTimeout) {
  SocketPair Pair;
  Frame Out;
  EXPECT_EQ(readFrame(Pair.B, Out, 50), WireError::Timeout);
}

TEST(Framing, WriteFrameReadFrameAcrossThreads) {
  SocketPair Pair;
  const std::string Payload(1u << 16, 'z');
  std::thread Writer([&] {
    EXPECT_TRUE(writeFrame(Pair.A, Opcode::Scan, Payload, 5000));
  });
  Frame Out;
  EXPECT_EQ(readFrame(Pair.B, Out, 5000), WireError::None);
  Writer.join();
  EXPECT_EQ(Out.Op, Opcode::Scan);
  EXPECT_EQ(Out.Payload, Payload);
}

TEST(Framing, NamesAreStable) {
  EXPECT_STREQ(opcodeName(Opcode::Ping), "ping");
  EXPECT_STREQ(opcodeName(Opcode::LockAcquire), "lock_acquire");
  EXPECT_STREQ(opcodeName(Opcode::Error), "error");
  EXPECT_STREQ(wireErrorName(WireError::ChecksumMismatch),
               "checksum_mismatch");
  EXPECT_STREQ(wireErrorName(WireError::BadMagic), "bad_magic");
}

TEST(Socket, ParseHostPort) {
  std::string Host;
  std::uint16_t Port = 0;
  EXPECT_TRUE(parseHostPort("127.0.0.1:9000", Host, Port));
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 9000);
  EXPECT_TRUE(parseHostPort("cachehost:1", Host, Port));
  EXPECT_EQ(Host, "cachehost");
  EXPECT_EQ(Port, 1);
  EXPECT_FALSE(parseHostPort("no-port", Host, Port));
  EXPECT_FALSE(parseHostPort("host:", Host, Port));
  EXPECT_FALSE(parseHostPort(":9000", Host, Port));
  EXPECT_FALSE(parseHostPort("host:notaport", Host, Port));
  EXPECT_FALSE(parseHostPort("host:70000", Host, Port));
  EXPECT_FALSE(parseHostPort("host:0", Host, Port));
}

TEST(Socket, ConnectRefusedFailsFast) {
  std::string Error;
  Socket S = Socket::connectTo("127.0.0.1", 1, 500, &Error);
  EXPECT_FALSE(S.valid());
  EXPECT_FALSE(Error.empty());
}

TEST(Socket, ListenerHandsOutEphemeralPort) {
  Listener L;
  std::string Error;
  ASSERT_TRUE(L.listenOn("127.0.0.1", 0, 4, &Error)) << Error;
  EXPECT_GT(L.port(), 0);
  // Nothing is connecting: acceptOnce must return invalid at deadline.
  Socket None = L.acceptOnce(50);
  EXPECT_FALSE(None.valid());
}

} // namespace
