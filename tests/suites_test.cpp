//===- tests/suites_test.cpp - NR and NAS corpora -------------------------===//

#include "fgbs/suites/Suites.h"

#include "fgbs/compiler/Compiler.h"

#include <gtest/gtest.h>

#include <set>

using namespace fgbs;

TEST(NrSuite, Has28SingleCodeletApplications) {
  Suite NR = makeNumericalRecipes();
  EXPECT_EQ(NR.Applications.size(), 28u);
  EXPECT_EQ(NR.numCodelets(), 28u);
  for (const Application &App : NR.Applications) {
    EXPECT_EQ(App.Codelets.size(), 1u);
    EXPECT_EQ(App.Codelets[0].App, App.Name);
    EXPECT_DOUBLE_EQ(App.Coverage, 1.0);
  }
}

TEST(NrSuite, AllWellBehavedTraits) {
  // NR codelets are all well-behaved (paper section 4.1): no traits.
  Suite NR = makeNumericalRecipes();
  for (const Codelet *C : NR.allCodelets()) {
    EXPECT_FALSE(C->Traits.CompilationContextSensitive) << C->Name;
    EXPECT_FALSE(C->Traits.CacheStateSensitive) << C->Name;
    EXPECT_EQ(C->Invocations.size(), 1u) << C->Name;
  }
}

TEST(NrSuite, NamesUniqueAndNonEmpty) {
  Suite NR = makeNumericalRecipes();
  std::set<std::string> Names;
  for (const Codelet *C : NR.allCodelets()) {
    EXPECT_FALSE(C->Name.empty());
    EXPECT_FALSE(C->Pattern.empty());
    Names.insert(C->Name);
  }
  EXPECT_EQ(Names.size(), 28u);
}

TEST(NrSuite, Table3VectorizationShape) {
  // Spot-check compiled vectorization against Table 3's "Vec." column.
  Machine Ref = makeNehalem();
  Suite NR = makeNumericalRecipes();
  std::map<std::string, std::string> Expected = {
      {"toeplz_1", "V + S"}, // 78% in the paper.
      {"toeplz_2", "S"},     // Descending walk stays scalar.
      {"tridag_1", "S"},     // Recurrence.
      {"svdcmp_14", "V"},    // Element-wise divide vectorizes.
      {"matadd_16", "V"},    // Contiguous add.
      {"svdcmp_11", "S"},    // LDA walk.
      {"hqr_15", "S"},       // Diagonal walk.
  };
  for (const Codelet *C : NR.allCodelets()) {
    auto It = Expected.find(C->Name);
    if (It == Expected.end())
      continue;
    BinaryLoop Loop = compile(*C, Ref, CompilationContext::InApplication);
    EXPECT_EQ(vectorizationTag(Loop), It->second) << C->Name;
  }
}

TEST(NrSuite, RecurrencesPresent) {
  // tridag_1/tridag_2/toeplz_4 are first-order recurrences.
  unsigned Recurrences = 0;
  Suite NR = makeNumericalRecipes();
  for (const Codelet *C : NR.allCodelets())
    for (const Stmt &S : C->Body)
      Recurrences += S.Kind == StmtKind::Recurrence;
  EXPECT_GE(Recurrences, 3u);
}

TEST(NasSuite, Has7AppsAnd67Codelets) {
  Suite Nas = makeNasSer();
  EXPECT_EQ(Nas.Applications.size(), 7u);
  EXPECT_EQ(Nas.numCodelets(), 67u);
  std::set<std::string> Names;
  for (const Application &App : Nas.Applications)
    Names.insert(App.Name);
  EXPECT_EQ(Names, (std::set<std::string>{"bt", "cg", "ft", "is", "lu", "mg",
                                          "sp"}));
}

TEST(NasSuite, CoverageIs92Percent) {
  for (const Application &App : makeNasSer().Applications)
    EXPECT_DOUBLE_EQ(App.Coverage, 0.92) << App.Name;
}

TEST(NasSuite, CodeletNamesCarryAppPrefix) {
  for (const Application &App : makeNasSer().Applications)
    for (const Codelet &C : App.Codelets) {
      EXPECT_EQ(C.App, App.Name);
      EXPECT_EQ(C.Name.rfind(App.Name + "/", 0), 0u) << C.Name;
    }
}

TEST(NasSuite, CgDominatedByCacheSensitiveMatvec) {
  // The Figure 5 story: one CG codelet holds ~95% of CG's runtime and is
  // cache-state sensitive.  (The suite must outlive Cg, which escapes
  // the loop — a temporary would die with the range-for.)
  Suite Nas = makeNasSer();
  const Application *Cg = nullptr;
  for (const Application &App : Nas.Applications)
    if (App.Name == "cg")
      Cg = &App;
  ASSERT_NE(Cg, nullptr);
  unsigned Sensitive = 0;
  for (const Codelet &C : Cg->Codelets)
    Sensitive += C.Traits.CacheStateSensitive;
  EXPECT_EQ(Sensitive, 1u);
}

TEST(NasSuite, MgCodeletsAllContextVarying) {
  // MG kernels run across V-cycle levels (or compile context-sensitively):
  // every one of them must misbehave under extraction, so that
  // per-application subsetting cannot predict MG (Figure 8).
  for (const Application &App : makeNasSer().Applications) {
    if (App.Name != "mg")
      continue;
    for (const Codelet &C : App.Codelets) {
      bool MultiScale = C.Invocations.size() > 1;
      EXPECT_TRUE(MultiScale || C.Traits.CompilationContextSensitive)
          << C.Name;
    }
  }
}

TEST(NasSuite, IllBehavedShareNearPaperRate) {
  // Akel et al.: ~19% of NAS codelets are ill-behaved.  Count trait
  // carriers (multi-scale invocations or context-sensitive compilation).
  unsigned Flagged = 0;
  Suite Nas = makeNasSer();
  for (const Codelet *C : Nas.allCodelets())
    Flagged += C->Invocations.size() > 1 ||
               C->Traits.CompilationContextSensitive ||
               C->Traits.CacheStateSensitive;
  double Share = static_cast<double>(Flagged) / Nas.numCodelets();
  EXPECT_GT(Share, 0.10);
  EXPECT_LT(Share, 0.30);
}

TEST(NasSuite, ClusterAPairExists) {
  // LU/erhs and FT/appft share the div+exp compute-bound shape.
  Suite Nas = makeNasSer();
  const Codelet *LuErhs = nullptr;
  const Codelet *FtAppft = nullptr;
  for (const Codelet *C : Nas.allCodelets()) {
    if (C->Name.rfind("lu/erhs", 0) == 0)
      LuErhs = C;
    if (C->Name.rfind("ft/appft", 0) == 0)
      FtAppft = C;
  }
  ASSERT_NE(LuErhs, nullptr);
  ASSERT_NE(FtAppft, nullptr);
  EXPECT_EQ(LuErhs->Pattern, FtAppft->Pattern);
}

TEST(NasSuite, ClusterBPairSharesShape) {
  // BT/rhs.f:266-311 and SP/rhs.f:275-320: five-plane stencils.
  Suite Nas = makeNasSer();
  const Codelet *Bt = nullptr;
  const Codelet *Sp = nullptr;
  for (const Codelet *C : Nas.allCodelets()) {
    if (C->Name == "bt/rhs.f:266-311")
      Bt = C;
    if (C->Name == "sp/rhs.f:275-320")
      Sp = C;
  }
  ASSERT_NE(Bt, nullptr);
  ASSERT_NE(Sp, nullptr);
  EXPECT_EQ(Bt->Pattern, Sp->Pattern);
  EXPECT_EQ(Bt->strideSummary(), Sp->strideSummary());
}

TEST(NasSuite, InvocationCountsPositive) {
  Suite Nas = makeNasSer();
  for (const Codelet *C : Nas.allCodelets()) {
    EXPECT_GT(C->totalInvocations(), 0u) << C->Name;
    EXPECT_GT(C->Nest.totalIterations(), 0u) << C->Name;
    EXPECT_FALSE(C->Arrays.empty()) << C->Name;
  }
}
