//===- tests/integration_test.cpp - End-to-end pipeline -------------------===//

#include "fgbs/core/Pipeline.h"

#include "fgbs/dsl/Builder.h"
#include "fgbs/support/Statistics.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

Codelet kernel(const char *Name, const char *App, std::uint64_t Elems,
               unsigned MulDepth, std::uint64_t Invocations) {
  CodeletBuilder B(Name, App);
  unsigned A = B.array("a", Precision::DP, Elems);
  unsigned X = B.array("x", Precision::DP, Elems);
  B.loops(Elems);
  ExprPtr E = B.ld(X, StrideClass::Unit);
  for (unsigned I = 0; I < MulDepth; ++I)
    E = add(mul(std::move(E), constant(Precision::DP)),
            constant(Precision::DP));
  B.stmt(storeTo(B.at(A, StrideClass::Unit), std::move(E)));
  B.invocations(Invocations);
  return B.take();
}

Codelet divKernel(const char *Name, const char *App, std::uint64_t Elems,
                  std::uint64_t Invocations) {
  CodeletBuilder B(Name, App);
  unsigned A = B.array("a", Precision::DP, Elems);
  B.loops(Elems);
  B.stmt(storeTo(B.at(A, StrideClass::Unit),
                 div(constant(Precision::DP), B.ld(A, StrideClass::Unit))));
  B.invocations(Invocations);
  return B.take();
}

/// A small synthetic suite with two obvious behaviour groups: streaming
/// triads and divide-bound kernels, split over two applications.
Suite syntheticSuite() {
  Suite S;
  S.Name = "synthetic";
  Application One;
  One.Name = "alpha";
  One.Coverage = 1.0;
  One.Codelets.push_back(kernel("alpha_stream_a", "alpha", 2 << 20, 1, 40));
  One.Codelets.push_back(kernel("alpha_stream_b", "alpha", 3 << 20, 1, 30));
  One.Codelets.push_back(divKernel("alpha_div_a", "alpha", 1 << 20, 50));
  Application Two;
  Two.Name = "beta";
  Two.Coverage = 1.0;
  Two.Codelets.push_back(kernel("beta_stream_a", "beta", 2 << 20, 2, 60));
  Two.Codelets.push_back(divKernel("beta_div_a", "beta", 1 << 20, 20));
  Two.Codelets.push_back(divKernel("beta_div_b", "beta", 3 << 19, 25));
  S.Applications.push_back(std::move(One));
  S.Applications.push_back(std::move(Two));
  return S;
}

class PipelineIntegration : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    TheSuite = new Suite(syntheticSuite());
    Db = new MeasurementDatabase(*TheSuite, makeNehalem(), paperTargets());
  }
  static void TearDownTestSuite() {
    delete Db;
    delete TheSuite;
    Db = nullptr;
    TheSuite = nullptr;
  }
  static Suite *TheSuite;
  static MeasurementDatabase *Db;
};

Suite *PipelineIntegration::TheSuite = nullptr;
MeasurementDatabase *PipelineIntegration::Db = nullptr;

} // namespace

TEST_F(PipelineIntegration, DatabaseKeepsAllCodelets) {
  EXPECT_EQ(Db->numCodelets(), 6u);
  EXPECT_EQ(Db->keptCodelets().size(), 6u);
}

TEST_F(PipelineIntegration, AllWellBehavedOnReference) {
  for (std::size_t I = 0; I < Db->numCodelets(); ++I)
    EXPECT_TRUE(Db->isWellBehavedOnRef(I)) << Db->codelet(I).Name;
}

TEST_F(PipelineIntegration, TwoClustersSeparateDivFromStream) {
  PipelineConfig Cfg;
  Cfg.K = 2;
  PipelineResult R = Pipeline(*Db, Cfg).run();
  ASSERT_EQ(R.Selection.FinalK, 2u);
  // All div kernels share a cluster; all stream kernels share the other.
  std::set<int> DivLabels;
  std::set<int> StreamLabels;
  for (std::size_t I = 0; I < R.Kept.size(); ++I) {
    const std::string &Name = Db->codelet(R.Kept[I]).Name;
    if (Name.find("div") != std::string::npos)
      DivLabels.insert(R.Selection.Assignment[I]);
    else
      StreamLabels.insert(R.Selection.Assignment[I]);
  }
  EXPECT_EQ(DivLabels.size(), 1u);
  EXPECT_EQ(StreamLabels.size(), 1u);
  EXPECT_NE(*DivLabels.begin(), *StreamLabels.begin());
}

TEST_F(PipelineIntegration, RepresentativesPredictedExactly) {
  PipelineConfig Cfg;
  Cfg.K = 3;
  PipelineResult R = Pipeline(*Db, Cfg).run();
  for (const TargetEvaluation &T : R.Targets) {
    for (std::size_t K = 0; K < R.Selection.Representatives.size(); ++K) {
      std::size_t Rep = R.Selection.Representatives[K];
      // The representative's prediction IS its own standalone time.
      double Expected =
          Db->standaloneTarget(R.Kept[Rep], &T - R.Targets.data())
              .MedianSeconds;
      EXPECT_DOUBLE_EQ(T.Predicted[Rep], Expected);
    }
  }
}

TEST_F(PipelineIntegration, ErrorsSmallOnHomogeneousClusters) {
  PipelineResult R = Pipeline(*Db, PipelineConfig()).run();
  for (const TargetEvaluation &T : R.Targets) {
    EXPECT_LT(T.MedianErrorPercent, 15.0) << T.MachineName;
    EXPECT_GT(T.MedianErrorPercent, 0.0);
  }
}

TEST_F(PipelineIntegration, ReductionFactorsSane) {
  PipelineResult R = Pipeline(*Db, PipelineConfig()).run();
  for (const TargetEvaluation &T : R.Targets) {
    EXPECT_GT(T.Reduction.totalFactor(), 1.0);
    EXPECT_GT(T.Reduction.invocationFactor(), 1.0);
    EXPECT_GE(T.Reduction.clusteringFactor(), 1.0);
    EXPECT_NEAR(T.Reduction.totalFactor(),
                T.Reduction.invocationFactor() *
                    T.Reduction.clusteringFactor(),
                1e-9);
  }
}

TEST_F(PipelineIntegration, MoreClustersLowerOrEqualError) {
  PipelineConfig Coarse;
  Coarse.K = 2;
  PipelineConfig Fine;
  Fine.K = 6;
  double CoarseErr =
      Pipeline(*Db, Coarse).run().Targets[0].AverageErrorPercent;
  double FineErr = Pipeline(*Db, Fine).run().Targets[0].AverageErrorPercent;
  // With one representative per codelet the only residual is noise.
  EXPECT_LE(FineErr, CoarseErr + 2.0);
}

TEST_F(PipelineIntegration, AppAggregationConsistent) {
  PipelineResult R = Pipeline(*Db, PipelineConfig()).run();
  const TargetEvaluation &T = R.Targets[0];
  ASSERT_EQ(T.AppNames.size(), 2u);
  EXPECT_EQ(T.AppNames[0], "alpha");
  // App real time equals the invocation-weighted codelet sum (coverage 1).
  double Alpha = 0.0;
  for (std::size_t I = 0; I < R.Kept.size(); ++I)
    if (Db->codelet(R.Kept[I]).App == "alpha")
      Alpha += T.Real[I] *
               static_cast<double>(Db->codelet(R.Kept[I]).totalInvocations());
  EXPECT_NEAR(T.AppReal[0], Alpha, 1e-9);
}

TEST_F(PipelineIntegration, GeomeanSpeedupsOrdered) {
  PipelineResult R = Pipeline(*Db, PipelineConfig()).run();
  double Atom = 0.0;
  double SB = 0.0;
  for (const TargetEvaluation &T : R.Targets) {
    if (T.MachineName == "Atom")
      Atom = T.RealGeomeanSpeedup;
    if (T.MachineName == "Sandy Bridge")
      SB = T.RealGeomeanSpeedup;
  }
  EXPECT_LT(Atom, 1.0);
  EXPECT_GT(SB, 1.0);
}

TEST_F(PipelineIntegration, RandomClusteringWorseOrEqual) {
  Pipeline P(*Db, PipelineConfig());
  PipelineResult Guided = P.run();
  Clustering Random = randomClustering(6, Guided.Selection.FinalK, 1234);
  PipelineResult Rand = P.runWithClustering(Random);
  // Not guaranteed per draw, but with a div/stream split a random
  // clustering of equal K can't beat the guided one by much.
  EXPECT_LE(Guided.Targets[0].MedianErrorPercent,
            Rand.Targets[0].MedianErrorPercent + 5.0);
}

TEST_F(PipelineIntegration, DisablingNormalizationStillRuns) {
  PipelineConfig Cfg;
  Cfg.Normalize = false;
  PipelineResult R = Pipeline(*Db, Cfg).run();
  EXPECT_GT(R.Selection.FinalK, 0u);
}

TEST_F(PipelineIntegration, ManualKRespected) {
  PipelineConfig Cfg;
  Cfg.K = 4;
  PipelineResult R = Pipeline(*Db, Cfg).run();
  EXPECT_EQ(R.InitialK, 4u);
}
