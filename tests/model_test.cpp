//===- tests/model_test.cpp - Prediction model and metrics ----------------===//

#include "fgbs/model/Prediction.h"

#include <gtest/gtest.h>

using namespace fgbs;

namespace {

/// Four codelets, two clusters; representatives are 0 and 2.
PredictionModel demoModel() {
  std::vector<double> RefTimes = {2.0, 4.0, 1.0, 3.0};
  std::vector<int> Assignment = {0, 0, 1, 1};
  std::vector<std::size_t> Reps = {0, 2};
  return PredictionModel::build(RefTimes, Assignment, Reps);
}

} // namespace

TEST(PredictionModel, MatrixShapeAndSparsity) {
  PredictionModel M = demoModel();
  EXPECT_EQ(M.numCodelets(), 4u);
  EXPECT_EQ(M.numClusters(), 2u);
  // Each row has exactly one nonzero, in its cluster's column.
  EXPECT_DOUBLE_EQ(M.matrix().at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(M.matrix().at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(M.matrix().at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(M.matrix().at(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(M.matrix().at(3, 1), 3.0);
}

TEST(PredictionModel, RepresentativePredictedExactly) {
  PredictionModel M = demoModel();
  // Representatives measured on the target.
  std::vector<double> RepTimes = {1.0, 0.5};
  std::vector<double> Pred = M.predict(RepTimes);
  EXPECT_DOUBLE_EQ(Pred[0], 1.0);
  EXPECT_DOUBLE_EQ(Pred[2], 0.5);
}

TEST(PredictionModel, SiblingsScaledByRefRatio) {
  PredictionModel M = demoModel();
  std::vector<double> Pred = M.predict({1.0, 0.5});
  // Codelet 1 is 2x the representative on the reference -> 2x on target.
  EXPECT_DOUBLE_EQ(Pred[1], 2.0);
  EXPECT_DOUBLE_EQ(Pred[3], 1.5);
}

TEST(PredictionModel, SpeedupFormulaEquivalence) {
  // t_tar(i) = t_ref(i) / s(rep),  s(rep) = t_ref(rep) / t_tar(rep).
  std::vector<double> RefTimes = {6.0, 9.0};
  PredictionModel M =
      PredictionModel::build(RefTimes, {0, 0}, {0});
  double RepTarget = 2.0; // Speedup 3.
  std::vector<double> Pred = M.predict({RepTarget});
  EXPECT_DOUBLE_EQ(Pred[1], 9.0 / 3.0);
}

TEST(PredictionModel, LinearInRepTimes) {
  PredictionModel M = demoModel();
  std::vector<double> A = M.predict({1.0, 1.0});
  std::vector<double> B = M.predict({2.0, 2.0});
  for (std::size_t I = 0; I < A.size(); ++I)
    EXPECT_DOUBLE_EQ(B[I], 2.0 * A[I]);
}

TEST(Metrics, PredictionErrorsPercent) {
  std::vector<double> Err =
      predictionErrorsPercent({110.0, 90.0, 100.0}, {100.0, 100.0, 100.0});
  EXPECT_DOUBLE_EQ(Err[0], 10.0);
  EXPECT_DOUBLE_EQ(Err[1], 10.0);
  EXPECT_DOUBLE_EQ(Err[2], 0.0);
}

TEST(Metrics, ApplicationTimeCoverage) {
  // 2 codelets x (time x invocations) = 10s covered, 92% coverage.
  double T = applicationTime({1.0, 2.0}, {4.0, 3.0}, 0.92);
  EXPECT_NEAR(T, 10.0 / 0.92, 1e-12);
}

TEST(Metrics, ApplicationTimeFullCoverage) {
  EXPECT_DOUBLE_EQ(applicationTime({5.0}, {2.0}, 1.0), 10.0);
}

TEST(Metrics, GeomeanSpeedup) {
  // Speedups 2 and 8 -> geomean 4.
  EXPECT_NEAR(geometricMeanSpeedup({2.0, 8.0}, {1.0, 1.0}), 4.0, 1e-12);
  // Slowdowns compose symmetrically.
  EXPECT_NEAR(geometricMeanSpeedup({1.0, 1.0}, {2.0, 8.0}), 0.25, 1e-12);
}

TEST(Metrics, ReductionBreakdownFactors) {
  ReductionBreakdown R;
  R.FullSuiteSeconds = 4430.0;
  R.ReducedInvocationSeconds = 369.0;
  R.RepresentativeSeconds = 100.0;
  EXPECT_NEAR(R.invocationFactor(), 12.0, 0.01);
  EXPECT_NEAR(R.clusteringFactor(), 3.69, 0.01);
  EXPECT_NEAR(R.totalFactor(), 44.3, 0.01);
  // total = invocation x clustering.
  EXPECT_NEAR(R.totalFactor(),
              R.invocationFactor() * R.clusteringFactor(), 1e-9);
}

TEST(Metrics, ReductionBreakdownEmpty) {
  ReductionBreakdown R;
  EXPECT_DOUBLE_EQ(R.totalFactor(), 0.0);
  EXPECT_DOUBLE_EQ(R.invocationFactor(), 0.0);
  EXPECT_DOUBLE_EQ(R.clusteringFactor(), 0.0);
}
