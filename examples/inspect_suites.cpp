//===- examples/inspect_suites.cpp - Suite exploration tool ---------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Walks the NR and NAS corpora and prints, for every codelet: its
// computation pattern, stride summary, vectorization tag, footprint,
// reference execution time, and the real speedup on each target machine.
// Useful both as an API tour (DSL -> compiler -> executor) and as a
// sanity check that the machine models behave like their silicon
// counterparts (Atom slow, Sandy Bridge fast, Core 2 mixed).
//
//===----------------------------------------------------------------------===//

#include "fgbs/analysis/Profiler.h"
#include "fgbs/compiler/Compiler.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/support/TextTable.h"

#include <cstdio>
#include <iostream>

using namespace fgbs;

static void inspect(const Suite &S, const Machine &Ref,
                    const std::vector<Machine> &Targets) {
  std::cout << "== " << S.Name << " (" << S.numCodelets() << " codelets) ==\n";

  TextTable Table;
  std::vector<std::string> Header = {"codelet", "pattern", "stride", "vec",
                                     "vec%",    "MB",      "ref ms"};
  for (const Machine &T : Targets)
    Header.push_back("s(" + T.Name + ")");
  Table.setHeader(Header);

  for (const Codelet *C : S.allCodelets()) {
    Measurement RefM = measureInApp(*C, Ref);
    BinaryLoop Loop = compile(*C, Ref, CompilationContext::InApplication);
    std::vector<std::string> Row = {
        C->Name,
        C->Pattern,
        C->strideSummary(),
        vectorizationTag(Loop),
        formatDouble(Loop.vectorizedPercent(), 0),
        formatDouble(static_cast<double>(C->footprintBytes()) / (1 << 20), 1),
        formatDouble(RefM.MeasuredSeconds * 1e3, 2)};
    for (const Machine &T : Targets) {
      Measurement TgtM = measureInApp(*C, T);
      Row.push_back(formatDouble(RefM.MeasuredSeconds / TgtM.MeasuredSeconds,
                                 2));
    }
    Table.addRow(Row);
  }
  Table.print(std::cout);
  std::cout << "\n";
}

int main() {
  Machine Ref = makeNehalem();
  std::vector<Machine> Targets = paperTargets();
  inspect(makeNumericalRecipes(), Ref, Targets);
  inspect(makeNasSer(), Ref, Targets);
  return 0;
}
