//===- examples/analyze_codelet.cpp - MAQAO/Likwid-style loop reports -----===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Prints a full static + dynamic analysis report for chosen codelets on
// chosen machines — the per-loop view a performance engineer gets from
// MAQAO and Likwid, which is exactly the information the feature vectors
// condense.  Usage:
//
//   analyze_codelet [codelet-substring] [machine-substring]
//
// With no arguments, reports the paper's "cluster A vs cluster B" story
// (section 4.4): a compute-bound divide/exp kernel and a memory-bound
// stencil, on Nehalem and Core 2, showing why one speeds up on Core 2
// while the other slows down.
//
//===----------------------------------------------------------------------===//

#include "fgbs/analysis/Report.h"
#include "fgbs/suites/Suites.h"

#include <iostream>
#include <string>

using namespace fgbs;

int main(int Argc, char **Argv) {
  Suite Nas = makeNasSer();
  std::vector<Machine> Machines = paperMachines();

  if (Argc >= 2) {
    std::string CodeletFilter = Argv[1];
    std::string MachineFilter = Argc >= 3 ? Argv[2] : "Nehalem";
    bool Found = false;
    for (const Codelet *C : Nas.allCodelets()) {
      if (C->Name.find(CodeletFilter) == std::string::npos)
        continue;
      for (const Machine &M : Machines)
        if (M.Name.find(MachineFilter) != std::string::npos) {
          printCodeletReport(std::cout, *C, M);
          Found = true;
        }
    }
    if (!Found)
      std::cerr << "no codelet matches '" << CodeletFilter << "'\n";
    return Found ? 0 : 1;
  }

  // Default tour: the section 4.4 "capturing architecture change" pair.
  for (const Codelet *C : Nas.allCodelets()) {
    bool ClusterA = C->Name == "lu/erhs.f:49-57";
    bool ClusterB = C->Name == "bt/rhs.f:266-311";
    if (!ClusterA && !ClusterB)
      continue;
    std::cout << (ClusterA ? "## Compute-bound (paper cluster A):\n"
                           : "## Memory-bound (paper cluster B):\n");
    for (const Machine &M : Machines)
      if (M.Name == "Nehalem" || M.Name == "Core 2")
        printCodeletReport(std::cout, *C, M);
  }
  std::cout << "Paper section 4.4: the compute-bound cluster is 1.37x "
               "faster on Core 2 (clock), the memory-bound one 1.34x "
               "slower (quarter-size last-level cache).\n";
  return 0;
}
