//===- examples/quickstart.cpp - Five steps in fifty lines ----------------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The shortest end-to-end tour of the library: take a benchmark suite,
// profile it on the reference machine, cluster the codelets, extract
// representatives, and predict every codelet's execution time on three
// target machines from the representatives alone.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/obs/RunReport.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/support/TextTable.h"

#include <cstdlib>
#include <iostream>

using namespace fgbs;

int main() {
  // Telemetry for the whole run: FGBS_TELEMETRY=1 prints a registry
  // summary at exit, FGBS_RUN_JSON=path writes the fgbs.run.v1 report,
  // FGBS_TRACE_JSON=path writes a Chrome trace of the pipeline phases.
  obs::Session Telemetry("quickstart");

  // The suite to reduce and the machines of paper Table 1.  Measurement
  // honours FGBS_THREADS (parallel fan-out) and FGBS_MEAS_CACHE (warm
  // runs load the finished database instead of re-simulating).
  Suite NR = makeNumericalRecipes();
  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  std::unique_ptr<MeasurementDatabase> DbPtr =
      buildMeasurementDatabase(NR, makeNehalem(), paperTargets(), Build);
  MeasurementDatabase &Db = *DbPtr;

  // Steps C-E with the paper's defaults: Table 2 features, Ward
  // clustering, Elbow-selected cluster count, medoid representatives.
  Pipeline P(Db, PipelineConfig());
  PipelineResult R = P.run();

  std::cout << "Suite: " << NR.Name << "\n"
            << "Codelets kept: " << R.Kept.size() << " of "
            << Db.numCodelets() << "\n"
            << "Elbow-selected clusters: " << R.ElbowK << "\n"
            << "Representatives after ill-behaved filtering: "
            << R.Selection.Representatives.size() << "\n\n";

  TextTable Table;
  Table.setHeader({"target", "median err", "avg err", "reduction",
                   "invocation x", "clustering x"});
  for (const TargetEvaluation &T : R.Targets)
    Table.addRow({T.MachineName, formatPercent(T.MedianErrorPercent),
                  formatPercent(T.AverageErrorPercent),
                  formatFactor(T.Reduction.totalFactor()),
                  formatFactor(T.Reduction.invocationFactor()),
                  formatFactor(T.Reduction.clusteringFactor())});
  Table.print(std::cout);

  std::cout << "\nRepresentatives:\n";
  for (std::size_t Local : R.Selection.Representatives)
    std::cout << "  " << Db.codelet(R.Kept[Local]).Name << "\n";

  Telemetry.recordValue("elbow_k", R.ElbowK);
  Telemetry.recordValue("representatives",
                        static_cast<double>(
                            R.Selection.Representatives.size()));
  return 0;
}
