//===- examples/system_selection.cpp - The paper's motivating use case ----===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// System selection: given the NAS SER suite and three candidate
// machines, find the best machine per application WITHOUT running the
// full suite on each candidate — run only the extracted representative
// microbenchmarks and extrapolate.  Compares the choices the reduced
// suite makes against the choices full benchmarking would make.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/support/Statistics.h"
#include "fgbs/support/TextTable.h"

#include <cstdlib>
#include <iostream>

using namespace fgbs;

int main() {
  Suite Nas = makeNasSer();
  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  std::unique_ptr<MeasurementDatabase> DbPtr =
      buildMeasurementDatabase(Nas, makeNehalem(), paperTargets(), Build);
  MeasurementDatabase &Db = *DbPtr;
  Pipeline P(Db, PipelineConfig());
  PipelineResult R = P.run();

  std::cout << "NAS SER system selection with "
            << R.Selection.Representatives.size()
            << " representative microbenchmarks (of " << R.Kept.size()
            << " codelets)\n\n";

  // Per-application predicted and real times on every target.
  const std::vector<std::string> &Apps = R.Targets.front().AppNames;
  TextTable Table;
  std::vector<std::string> Header = {"app"};
  for (const TargetEvaluation &T : R.Targets)
    Header.push_back(T.MachineName + " pred/real (s)");
  Header.push_back("predicted best");
  Header.push_back("actual best");
  Table.setHeader(Header);

  unsigned Agreements = 0;
  for (std::size_t A = 0; A < Apps.size(); ++A) {
    std::vector<std::string> Row = {Apps[A]};
    std::vector<double> Pred;
    std::vector<double> Real;
    for (const TargetEvaluation &T : R.Targets) {
      Pred.push_back(T.AppPredicted[A]);
      Real.push_back(T.AppReal[A]);
      Row.push_back(formatDouble(T.AppPredicted[A], 1) + " / " +
                    formatDouble(T.AppReal[A], 1));
    }
    std::size_t PredBest = argMin(Pred);
    std::size_t RealBest = argMin(Real);
    Row.push_back(R.Targets[PredBest].MachineName);
    Row.push_back(R.Targets[RealBest].MachineName);
    Agreements += PredBest == RealBest;
    Table.addRow(Row);
  }
  Table.print(std::cout);

  std::cout << "\nReduced suite picks the actually-best machine for "
            << Agreements << "/" << Apps.size() << " applications\n\n";

  TextTable Summary;
  Summary.setHeader({"target", "geomean speedup (real)",
                     "geomean speedup (predicted)", "median codelet err",
                     "benchmarking reduction"});
  for (const TargetEvaluation &T : R.Targets)
    Summary.addRow({T.MachineName, formatDouble(T.RealGeomeanSpeedup, 2),
                    formatDouble(T.PredictedGeomeanSpeedup, 2),
                    formatPercent(T.MedianErrorPercent),
                    formatFactor(T.Reduction.totalFactor())});
  Summary.print(std::cout);
  return 0;
}
