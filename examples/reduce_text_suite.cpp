//===- examples/reduce_text_suite.cpp - Reduce a suite written as text ----===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Loads a benchmark suite from the textual codelet format (see
// fgbs/dsl/Text.h for the grammar and examples/demo_suite.fgbs for a
// sample), runs the full reduction pipeline on the paper's machines, and
// prints the reduced suite.  Parse errors come back with exact
// line:column positions.
//
// Usage: reduce_text_suite [suite.fgbs]
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/dsl/Text.h"
#include "fgbs/support/TextTable.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace fgbs;

int main(int Argc, char **Argv) {
  std::string Path = Argc >= 2 ? Argv[1] : "examples/demo_suite.fgbs";
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open '" << Path << "'\n";
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ParseResult<Suite> Parsed = parseSuite(Buffer.str());
  if (auto *E = std::get_if<ParseError>(&Parsed)) {
    std::cerr << Path << ":" << E->render() << "\n";
    return 1;
  }
  Suite S = std::move(std::get<Suite>(Parsed));
  std::cout << "parsed suite '" << S.Name << "': "
            << S.Applications.size() << " applications, " << S.numCodelets()
            << " codelets\n\n";

  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  std::unique_ptr<MeasurementDatabase> DbPtr =
      buildMeasurementDatabase(S, makeNehalem(), paperTargets(), Build);
  MeasurementDatabase &Db = *DbPtr;
  PipelineResult R = Pipeline(Db, PipelineConfig()).run();

  std::cout << "reduced to " << R.Selection.Representatives.size()
            << " representatives (elbow K = " << R.ElbowK << ")\n\n";
  TextTable T;
  T.setHeader({"representative", "pattern", "cluster size"});
  std::vector<unsigned> Sizes(R.Selection.FinalK, 0);
  for (int Label : R.Selection.Assignment)
    ++Sizes[static_cast<std::size_t>(Label)];
  for (unsigned K = 0; K < R.Selection.FinalK; ++K) {
    const Codelet &C = Db.codelet(R.Kept[R.Selection.Representatives[K]]);
    T.addRow({C.Name, C.Pattern, std::to_string(Sizes[K])});
  }
  T.print(std::cout);

  std::cout << "\n";
  TextTable E;
  E.setHeader({"target", "median err", "reduction"});
  for (const TargetEvaluation &Tgt : R.Targets)
    E.addRow({Tgt.MachineName, formatPercent(Tgt.MedianErrorPercent),
              formatFactor(Tgt.Reduction.totalFactor())});
  E.print(std::cout);
  return 0;
}
