//===- examples/compiler_tuning.cpp - Reduced suites for flag tuning ------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The paper's conclusion: "Our method could be extended to other
// contexts such as compiler regression test-suites or auto-tuning."
// This example does that.  Instead of comparing architectures, it
// compares COMPILER CONFIGURATIONS on one machine: measure only the
// extracted representatives under each flag set, extrapolate the whole
// suite with the prediction model, and pick the best flags — then check
// the choice against the (expensive) full-suite truth.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/suites/Suites.h"
#include "fgbs/support/Statistics.h"
#include "fgbs/support/TextTable.h"

#include <cstdlib>
#include <iostream>

using namespace fgbs;

namespace {

/// Per-invocation time of \p C under \p Options (noise-free model time,
/// standing in for a measured median).
double timeUnder(const Codelet &C, const Machine &M,
                 const CompilerOptions &Options) {
  ExecutionRequest R;
  R.DatasetScale = C.capturedDatasetScale();
  R.Context = CompilationContext::Standalone;
  R.Options = Options;
  return execute(C, M, R).TrueSeconds;
}

/// Whole-suite seconds under \p Options, weighting each codelet by its
/// invocation count (the "full benchmarking" truth).
double fullSuiteSeconds(const MeasurementDatabase &Db,
                        const std::vector<std::size_t> &Kept,
                        const Machine &M, const CompilerOptions &Options) {
  double Total = 0.0;
  for (std::size_t Index : Kept) {
    const Codelet &C = Db.codelet(Index);
    ExecutionRequest R;
    R.Options = Options;
    Total += execute(C, M, R).TrueSeconds *
             static_cast<double>(C.totalInvocations());
  }
  return Total;
}

} // namespace

int main() {
  Suite NR = makeNumericalRecipes();
  Machine M = makeNehalem();
  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  std::unique_ptr<MeasurementDatabase> DbPtr =
      buildMeasurementDatabase(NR, M, paperTargets(), Build);
  MeasurementDatabase &Db = *DbPtr;
  PipelineResult R = Pipeline(Db, PipelineConfig()).run();

  std::cout << "Tuning compiler flags on " << M.Name << " over '" << NR.Name
            << "' (" << R.Kept.size() << " codelets, "
            << R.Selection.Representatives.size()
            << " representatives)\n\n";

  const CompilerOptions Candidates[] = {
      CompilerOptions::o3(),
      CompilerOptions::noVec(),
      CompilerOptions::strictFp(),
      CompilerOptions::noUnroll(),
  };

  // Reference times (default flags) drive the prediction matrix.
  std::vector<double> RefTimes(R.Kept.size());
  for (std::size_t I = 0; I < R.Kept.size(); ++I)
    RefTimes[I] = Db.profile(R.Kept[I]).InApp.MeasuredSeconds;

  TextTable T;
  T.setHeader({"flags", "predicted suite s", "real suite s", "gap",
               "reps measured"});
  std::vector<double> Predicted;
  std::vector<double> Real;
  for (const CompilerOptions &Options : Candidates) {
    // Cheap path: run only the representatives under these flags.
    std::vector<double> RepTimes;
    for (std::size_t Local : R.Selection.Representatives)
      RepTimes.push_back(timeUnder(Db.codelet(R.Kept[Local]), M, Options));
    std::vector<double> PerCodelet = R.Model.predict(RepTimes);
    double Pred = 0.0;
    for (std::size_t I = 0; I < R.Kept.size(); ++I)
      Pred += PerCodelet[I] *
              static_cast<double>(Db.codelet(R.Kept[I]).totalInvocations());

    // Expensive path (ground truth): run everything.
    double Truth = fullSuiteSeconds(Db, R.Kept, M, Options);

    Predicted.push_back(Pred);
    Real.push_back(Truth);
    T.addRow({Options.name(), formatDouble(Pred, 1), formatDouble(Truth, 1),
              formatPercent(percentError(Pred, Truth)),
              std::to_string(R.Selection.Representatives.size())});
  }
  T.print(std::cout);

  std::size_t PredBest = argMin(Predicted);
  std::size_t RealBest = argMin(Real);
  std::cout << "\nreduced-suite choice: " << Candidates[PredBest].name()
            << "\nfull-suite choice:    " << Candidates[RealBest].name()
            << "\nagreement: " << (PredBest == RealBest ? "yes" : "NO")
            << "\n\nWhat the flags cost (real suite time vs -O3): ";
  for (std::size_t I = 1; I < Real.size(); ++I)
    std::cout << Candidates[I].name() << " x"
              << formatDouble(Real[I] / Real[0], 2) << "  ";
  std::cout << "\n";
  return 0;
}
