//===- examples/custom_suite.cpp - Your own codelets, your own machine ----===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// Shows the full extensibility surface of the library:
//   1. describe your own workload as codelets with the DSL builder,
//   2. describe a candidate machine that does not exist in the paper,
//   3. reduce the suite and decide whether the candidate machine beats
//      the reference for YOUR workload — without "running" the full
//      suite on it.
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Pipeline.h"
#include "fgbs/dsl/Builder.h"
#include "fgbs/support/TextTable.h"

#include <cstdlib>
#include <iostream>

using namespace fgbs;

/// A made-up image-processing pipeline with a few typical kernels.
static Suite makeImagingSuite() {
  Suite S;
  S.Name = "imaging";
  Application App;
  App.Name = "imgproc";
  App.Coverage = 0.95;

  {
    // 5x5 convolution over a 4K frame, SP.
    CodeletBuilder B("imgproc/convolve5x5", "imgproc");
    B.pattern("SP: 5x5 convolution");
    unsigned In = B.array("in", Precision::SP, 3840ull * 2160);
    unsigned Out = B.array("out", Precision::SP, 3840ull * 2160);
    B.loops(3840ull * 2160);
    ExprPtr Acc = mul(constant(Precision::SP),
                      B.ld(In, StrideClass::Stencil, 1, 5));
    for (int I = 0; I < 4; ++I)
      Acc = add(std::move(Acc), constant(Precision::SP));
    B.stmt(storeTo(B.at(Out, StrideClass::Unit), std::move(Acc)));
    B.invocations(240); // Frames.
    App.Codelets.push_back(B.take());
  }
  {
    // Histogram over 8-bit pixels: integer scatter.
    CodeletBuilder B("imgproc/histogram", "imgproc");
    B.pattern("INT: luminance histogram");
    unsigned Px = B.array("pixels", Precision::I32, 3840ull * 2160);
    unsigned Hist = B.array("hist", Precision::I32, 4096);
    B.loops(3840ull * 2160);
    B.stmt(storeTo(B.at(Hist, StrideClass::Lda, 37),
                   add(B.ld(Hist, StrideClass::Lda, 37),
                       mul(B.ld(Px, StrideClass::Unit),
                           constant(Precision::I32)))));
    B.invocations(240);
    App.Codelets.push_back(B.take());
  }
  {
    // Gamma correction: per-pixel pow() modeled as exp-class work.
    CodeletBuilder B("imgproc/gamma", "imgproc");
    B.pattern("SP: per-pixel gamma correction");
    unsigned Px = B.array("pixels", Precision::SP, 3840ull * 2160);
    B.loops(3840ull * 2160);
    B.stmt(storeTo(B.at(Px, StrideClass::Unit),
                   unary(UnOp::Exp, mul(B.ld(Px, StrideClass::Unit),
                                        constant(Precision::SP)))));
    B.invocations(60);
    App.Codelets.push_back(B.take());
  }
  {
    // Frame blend: streaming SP triad.
    CodeletBuilder B("imgproc/blend", "imgproc");
    B.pattern("SP: frame alpha blend");
    unsigned A = B.array("a", Precision::SP, 3840ull * 2160);
    unsigned Bf = B.array("b", Precision::SP, 3840ull * 2160);
    B.loops(3840ull * 2160);
    B.stmt(storeTo(B.at(A, StrideClass::Unit),
                   add(mul(B.ld(A, StrideClass::Unit),
                           constant(Precision::SP)),
                       mul(B.ld(Bf, StrideClass::Unit),
                           constant(Precision::SP)))));
    B.invocations(240);
    App.Codelets.push_back(B.take());
  }

  S.Applications.push_back(std::move(App));
  return S;
}

/// A hypothetical low-power candidate: Atom-class core with a big L3.
static Machine makeCandidate() {
  Machine M = makeAtom();
  M.Name = "BigCacheAtom";
  M.Cpu = "hypothetical";
  M.CacheLevels.push_back({"L3", 16ull << 20, 16, 64, 45.0, 8.0});
  M.MemBandwidthGBs = 6.0;
  return M;
}

int main() {
  Suite S = makeImagingSuite();
  // The cache key covers the candidate machine's full description, so a
  // tweaked hypothetical machine never serves stale numbers.
  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  std::unique_ptr<MeasurementDatabase> DbPtr = buildMeasurementDatabase(
      S, makeNehalem(), {makeCandidate(), makeSandyBridge()}, Build);
  MeasurementDatabase &Db = *DbPtr;

  PipelineConfig Cfg;
  Cfg.K = 3; // Small suite: ask for three representatives directly.
  PipelineResult R = Pipeline(Db, Cfg).run();

  std::cout << "Custom suite '" << S.Name << "': " << R.Kept.size()
            << " codelets reduced to " << R.Selection.Representatives.size()
            << " microbenchmarks\n\n";

  TextTable T;
  T.setHeader({"candidate", "predicted app time (s)", "real app time (s)",
               "median codelet err", "benchmarking reduction"});
  for (const TargetEvaluation &E : R.Targets)
    T.addRow({E.MachineName, formatDouble(E.AppPredicted[0], 1),
              formatDouble(E.AppReal[0], 1),
              formatPercent(E.MedianErrorPercent),
              formatFactor(E.Reduction.totalFactor())});
  T.print(std::cout);

  std::cout << "\nRepresentatives to ship to the candidate machines:\n";
  for (std::size_t Local : R.Selection.Representatives)
    std::cout << "  " << Db.codelet(R.Kept[Local]).Name << " ("
              << Db.codelet(R.Kept[Local]).Pattern << ")\n";
  return 0;
}
