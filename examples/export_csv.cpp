//===- examples/export_csv.cpp - Persist profiles and evaluations ---------===//
//
// Part of the FGBS project: a reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (CGO 2014).
//
// The paper's workflow amortizes the one-time profiling/extraction cost
// by reusing its artifacts across machines and users.  This example
// materializes those artifacts as CSV: the step-B profiles (76-feature
// vectors + reference times), the normalized feature matrix fed to the
// clustering, and the full step-E evaluation.  Files land in the current
// directory (or the directory given as argv[1]).
//
//===----------------------------------------------------------------------===//

#include "fgbs/core/MeasurementCache.h"
#include "fgbs/core/Serialization.h"
#include "fgbs/suites/Suites.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

using namespace fgbs;

int main(int Argc, char **Argv) {
  std::string Dir = Argc >= 2 ? std::string(Argv[1]) + "/" : "";

  Suite Nas = makeNasSer();
  DatabaseBuildOptions Build;
  if (const char *Dir = std::getenv("FGBS_MEAS_CACHE"))
    Build.CacheDir = Dir;
  std::unique_ptr<MeasurementDatabase> DbPtr =
      buildMeasurementDatabase(Nas, makeNehalem(), paperTargets(), Build);
  MeasurementDatabase &Db = *DbPtr;
  Pipeline P(Db, PipelineConfig());
  PipelineResult R = P.run();

  {
    std::ofstream OS(Dir + "fgbs_nas_profiles.csv");
    if (!OS) {
      std::cerr << "error: cannot write to '" << Dir << "'\n";
      return 1;
    }
    writeProfilesCsv(OS, Db);
    std::cout << "wrote " << Dir << "fgbs_nas_profiles.csv ("
              << Db.numCodelets() << " codelets x 76 features)\n";
  }
  {
    std::ofstream OS(Dir + "fgbs_nas_features_normalized.csv");
    std::vector<std::string> Cols;
    const FeatureCatalog &Cat = FeatureCatalog::get();
    const FeatureMask &Mask = P.config().Features;
    for (std::size_t I = 0; I < Cat.size(); ++I)
      if (Mask[I])
        Cols.push_back(Cat.info(I).Name);
    std::vector<std::string> Rows;
    for (std::size_t Index : R.Kept)
      Rows.push_back(Db.codelet(Index).Name);
    writeFeatureMatrixCsv(OS, R.Points, Cols, Rows);
    std::cout << "wrote " << Dir << "fgbs_nas_features_normalized.csv ("
              << R.Points.size() << " x " << Cols.size() << ")\n";
  }
  {
    std::ofstream OS(Dir + "fgbs_nas_evaluation.csv");
    writeEvaluationCsv(OS, Db, R);
    std::cout << "wrote " << Dir << "fgbs_nas_evaluation.csv ("
              << R.Kept.size() << " codelets, "
              << R.Selection.Representatives.size()
              << " representatives, " << R.Targets.size() << " targets)\n";
  }

  // Round-trip sanity check of the matrix we just wrote.
  std::ifstream IS(Dir + "fgbs_nas_features_normalized.csv");
  std::optional<FeatureMatrixCsv> Back = readFeatureMatrixCsv(IS);
  if (!Back || Back->Points.size() != R.Points.size()) {
    std::cerr << "error: feature matrix did not round-trip\n";
    return 1;
  }
  std::cout << "round-trip check passed\n";
  return 0;
}
