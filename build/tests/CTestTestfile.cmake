# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_arch_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_model_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/ga_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/suites_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
