file(REMOVE_RECURSE
  "CMakeFiles/isa_arch_test.dir/isa_arch_test.cpp.o"
  "CMakeFiles/isa_arch_test.dir/isa_arch_test.cpp.o.d"
  "isa_arch_test"
  "isa_arch_test.pdb"
  "isa_arch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_arch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
