# Empty compiler generated dependencies file for isa_arch_test.
# This may be replaced when dependencies are built.
