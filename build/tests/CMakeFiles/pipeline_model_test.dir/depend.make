# Empty dependencies file for pipeline_model_test.
# This may be replaced when dependencies are built.
