# Empty compiler generated dependencies file for fig8_cross_app_subsetting.
# This may be replaced when dependencies are built.
