file(REMOVE_RECURSE
  "CMakeFiles/fig8_cross_app_subsetting.dir/fig8_cross_app_subsetting.cpp.o"
  "CMakeFiles/fig8_cross_app_subsetting.dir/fig8_cross_app_subsetting.cpp.o.d"
  "fig8_cross_app_subsetting"
  "fig8_cross_app_subsetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cross_app_subsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
