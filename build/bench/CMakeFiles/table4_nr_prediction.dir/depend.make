# Empty dependencies file for table4_nr_prediction.
# This may be replaced when dependencies are built.
