# Empty dependencies file for fig7_random_clustering.
# This may be replaced when dependencies are built.
