file(REMOVE_RECURSE
  "CMakeFiles/fig4_codelet_prediction.dir/fig4_codelet_prediction.cpp.o"
  "CMakeFiles/fig4_codelet_prediction.dir/fig4_codelet_prediction.cpp.o.d"
  "fig4_codelet_prediction"
  "fig4_codelet_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_codelet_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
