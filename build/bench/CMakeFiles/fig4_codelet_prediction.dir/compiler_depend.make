# Empty compiler generated dependencies file for fig4_codelet_prediction.
# This may be replaced when dependencies are built.
