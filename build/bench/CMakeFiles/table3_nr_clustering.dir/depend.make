# Empty dependencies file for table3_nr_clustering.
# This may be replaced when dependencies are built.
