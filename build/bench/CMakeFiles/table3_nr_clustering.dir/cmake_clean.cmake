file(REMOVE_RECURSE
  "CMakeFiles/table3_nr_clustering.dir/table3_nr_clustering.cpp.o"
  "CMakeFiles/table3_nr_clustering.dir/table3_nr_clustering.cpp.o.d"
  "table3_nr_clustering"
  "table3_nr_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_nr_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
