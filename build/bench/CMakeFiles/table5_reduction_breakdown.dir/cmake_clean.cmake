file(REMOVE_RECURSE
  "CMakeFiles/table5_reduction_breakdown.dir/table5_reduction_breakdown.cpp.o"
  "CMakeFiles/table5_reduction_breakdown.dir/table5_reduction_breakdown.cpp.o.d"
  "table5_reduction_breakdown"
  "table5_reduction_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_reduction_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
