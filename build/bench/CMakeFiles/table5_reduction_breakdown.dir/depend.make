# Empty dependencies file for table5_reduction_breakdown.
# This may be replaced when dependencies are built.
