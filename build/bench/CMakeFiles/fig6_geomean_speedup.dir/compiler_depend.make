# Empty compiler generated dependencies file for fig6_geomean_speedup.
# This may be replaced when dependencies are built.
