file(REMOVE_RECURSE
  "CMakeFiles/fig6_geomean_speedup.dir/fig6_geomean_speedup.cpp.o"
  "CMakeFiles/fig6_geomean_speedup.dir/fig6_geomean_speedup.cpp.o.d"
  "fig6_geomean_speedup"
  "fig6_geomean_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_geomean_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
