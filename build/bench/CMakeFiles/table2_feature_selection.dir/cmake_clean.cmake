file(REMOVE_RECURSE
  "CMakeFiles/table2_feature_selection.dir/table2_feature_selection.cpp.o"
  "CMakeFiles/table2_feature_selection.dir/table2_feature_selection.cpp.o.d"
  "table2_feature_selection"
  "table2_feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
