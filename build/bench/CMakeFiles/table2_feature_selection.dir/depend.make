# Empty dependencies file for table2_feature_selection.
# This may be replaced when dependencies are built.
