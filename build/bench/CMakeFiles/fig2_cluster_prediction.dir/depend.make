# Empty dependencies file for fig2_cluster_prediction.
# This may be replaced when dependencies are built.
