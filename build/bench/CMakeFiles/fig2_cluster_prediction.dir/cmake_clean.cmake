file(REMOVE_RECURSE
  "CMakeFiles/fig2_cluster_prediction.dir/fig2_cluster_prediction.cpp.o"
  "CMakeFiles/fig2_cluster_prediction.dir/fig2_cluster_prediction.cpp.o.d"
  "fig2_cluster_prediction"
  "fig2_cluster_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cluster_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
