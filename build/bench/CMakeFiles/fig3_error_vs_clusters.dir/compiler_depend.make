# Empty compiler generated dependencies file for fig3_error_vs_clusters.
# This may be replaced when dependencies are built.
