file(REMOVE_RECURSE
  "CMakeFiles/fig5_app_prediction.dir/fig5_app_prediction.cpp.o"
  "CMakeFiles/fig5_app_prediction.dir/fig5_app_prediction.cpp.o.d"
  "fig5_app_prediction"
  "fig5_app_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_app_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
