# Empty dependencies file for fig5_app_prediction.
# This may be replaced when dependencies are built.
