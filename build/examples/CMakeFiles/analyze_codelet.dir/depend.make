# Empty dependencies file for analyze_codelet.
# This may be replaced when dependencies are built.
