file(REMOVE_RECURSE
  "CMakeFiles/analyze_codelet.dir/analyze_codelet.cpp.o"
  "CMakeFiles/analyze_codelet.dir/analyze_codelet.cpp.o.d"
  "analyze_codelet"
  "analyze_codelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_codelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
