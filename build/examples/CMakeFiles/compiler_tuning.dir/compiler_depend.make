# Empty compiler generated dependencies file for compiler_tuning.
# This may be replaced when dependencies are built.
