file(REMOVE_RECURSE
  "CMakeFiles/compiler_tuning.dir/compiler_tuning.cpp.o"
  "CMakeFiles/compiler_tuning.dir/compiler_tuning.cpp.o.d"
  "compiler_tuning"
  "compiler_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
