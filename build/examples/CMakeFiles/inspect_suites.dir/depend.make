# Empty dependencies file for inspect_suites.
# This may be replaced when dependencies are built.
