file(REMOVE_RECURSE
  "CMakeFiles/inspect_suites.dir/inspect_suites.cpp.o"
  "CMakeFiles/inspect_suites.dir/inspect_suites.cpp.o.d"
  "inspect_suites"
  "inspect_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
