file(REMOVE_RECURSE
  "CMakeFiles/system_selection.dir/system_selection.cpp.o"
  "CMakeFiles/system_selection.dir/system_selection.cpp.o.d"
  "system_selection"
  "system_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
