# Empty compiler generated dependencies file for system_selection.
# This may be replaced when dependencies are built.
