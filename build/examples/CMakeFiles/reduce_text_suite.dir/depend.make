# Empty dependencies file for reduce_text_suite.
# This may be replaced when dependencies are built.
