file(REMOVE_RECURSE
  "CMakeFiles/reduce_text_suite.dir/reduce_text_suite.cpp.o"
  "CMakeFiles/reduce_text_suite.dir/reduce_text_suite.cpp.o.d"
  "reduce_text_suite"
  "reduce_text_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_text_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
