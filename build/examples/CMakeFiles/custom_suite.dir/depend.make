# Empty dependencies file for custom_suite.
# This may be replaced when dependencies are built.
