file(REMOVE_RECURSE
  "CMakeFiles/custom_suite.dir/custom_suite.cpp.o"
  "CMakeFiles/custom_suite.dir/custom_suite.cpp.o.d"
  "custom_suite"
  "custom_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
