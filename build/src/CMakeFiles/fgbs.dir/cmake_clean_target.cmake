file(REMOVE_RECURSE
  "libfgbs.a"
)
