# Empty dependencies file for fgbs.
# This may be replaced when dependencies are built.
