
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgbs/analysis/Features.cpp" "src/CMakeFiles/fgbs.dir/fgbs/analysis/Features.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/analysis/Features.cpp.o.d"
  "/root/repo/src/fgbs/analysis/Profiler.cpp" "src/CMakeFiles/fgbs.dir/fgbs/analysis/Profiler.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/analysis/Profiler.cpp.o.d"
  "/root/repo/src/fgbs/analysis/Report.cpp" "src/CMakeFiles/fgbs.dir/fgbs/analysis/Report.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/analysis/Report.cpp.o.d"
  "/root/repo/src/fgbs/arch/Machine.cpp" "src/CMakeFiles/fgbs.dir/fgbs/arch/Machine.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/arch/Machine.cpp.o.d"
  "/root/repo/src/fgbs/cluster/Cluster.cpp" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Cluster.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Cluster.cpp.o.d"
  "/root/repo/src/fgbs/cluster/Hierarchical.cpp" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Hierarchical.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Hierarchical.cpp.o.d"
  "/root/repo/src/fgbs/cluster/Quality.cpp" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Quality.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Quality.cpp.o.d"
  "/root/repo/src/fgbs/cluster/Render.cpp" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Render.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/cluster/Render.cpp.o.d"
  "/root/repo/src/fgbs/compiler/BinaryLoop.cpp" "src/CMakeFiles/fgbs.dir/fgbs/compiler/BinaryLoop.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/compiler/BinaryLoop.cpp.o.d"
  "/root/repo/src/fgbs/compiler/Compiler.cpp" "src/CMakeFiles/fgbs.dir/fgbs/compiler/Compiler.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/compiler/Compiler.cpp.o.d"
  "/root/repo/src/fgbs/core/Database.cpp" "src/CMakeFiles/fgbs.dir/fgbs/core/Database.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/core/Database.cpp.o.d"
  "/root/repo/src/fgbs/core/Pipeline.cpp" "src/CMakeFiles/fgbs.dir/fgbs/core/Pipeline.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/core/Pipeline.cpp.o.d"
  "/root/repo/src/fgbs/core/Serialization.cpp" "src/CMakeFiles/fgbs.dir/fgbs/core/Serialization.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/core/Serialization.cpp.o.d"
  "/root/repo/src/fgbs/core/Validation.cpp" "src/CMakeFiles/fgbs.dir/fgbs/core/Validation.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/core/Validation.cpp.o.d"
  "/root/repo/src/fgbs/dsl/Builder.cpp" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Builder.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Builder.cpp.o.d"
  "/root/repo/src/fgbs/dsl/Codelet.cpp" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Codelet.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Codelet.cpp.o.d"
  "/root/repo/src/fgbs/dsl/Expr.cpp" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Expr.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Expr.cpp.o.d"
  "/root/repo/src/fgbs/dsl/Text.cpp" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Text.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/dsl/Text.cpp.o.d"
  "/root/repo/src/fgbs/extract/Extraction.cpp" "src/CMakeFiles/fgbs.dir/fgbs/extract/Extraction.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/extract/Extraction.cpp.o.d"
  "/root/repo/src/fgbs/ga/GeneticAlgorithm.cpp" "src/CMakeFiles/fgbs.dir/fgbs/ga/GeneticAlgorithm.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/ga/GeneticAlgorithm.cpp.o.d"
  "/root/repo/src/fgbs/isa/Isa.cpp" "src/CMakeFiles/fgbs.dir/fgbs/isa/Isa.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/isa/Isa.cpp.o.d"
  "/root/repo/src/fgbs/model/Prediction.cpp" "src/CMakeFiles/fgbs.dir/fgbs/model/Prediction.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/model/Prediction.cpp.o.d"
  "/root/repo/src/fgbs/sim/Cache.cpp" "src/CMakeFiles/fgbs.dir/fgbs/sim/Cache.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/sim/Cache.cpp.o.d"
  "/root/repo/src/fgbs/sim/Executor.cpp" "src/CMakeFiles/fgbs.dir/fgbs/sim/Executor.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/sim/Executor.cpp.o.d"
  "/root/repo/src/fgbs/sim/Pipeline.cpp" "src/CMakeFiles/fgbs.dir/fgbs/sim/Pipeline.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/sim/Pipeline.cpp.o.d"
  "/root/repo/src/fgbs/suites/NAS.cpp" "src/CMakeFiles/fgbs.dir/fgbs/suites/NAS.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/suites/NAS.cpp.o.d"
  "/root/repo/src/fgbs/suites/NR.cpp" "src/CMakeFiles/fgbs.dir/fgbs/suites/NR.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/suites/NR.cpp.o.d"
  "/root/repo/src/fgbs/suites/Synthetic.cpp" "src/CMakeFiles/fgbs.dir/fgbs/suites/Synthetic.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/suites/Synthetic.cpp.o.d"
  "/root/repo/src/fgbs/support/Matrix.cpp" "src/CMakeFiles/fgbs.dir/fgbs/support/Matrix.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/support/Matrix.cpp.o.d"
  "/root/repo/src/fgbs/support/Rng.cpp" "src/CMakeFiles/fgbs.dir/fgbs/support/Rng.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/support/Rng.cpp.o.d"
  "/root/repo/src/fgbs/support/Statistics.cpp" "src/CMakeFiles/fgbs.dir/fgbs/support/Statistics.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/support/Statistics.cpp.o.d"
  "/root/repo/src/fgbs/support/TextTable.cpp" "src/CMakeFiles/fgbs.dir/fgbs/support/TextTable.cpp.o" "gcc" "src/CMakeFiles/fgbs.dir/fgbs/support/TextTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
